package grafts

import (
	"encoding/binary"
	"fmt"

	"graftlab/internal/mem"
)

// The compiled technology class. The paper did not run one graft binary
// under six systems; it *reimplemented* each graft per technology ("We
// took the standard C implementation ... and modified or reimplemented it
// for each of our test platforms", §5.5). This file and its siblings do
// the same: each graft has hand-written Go implementations whose memory
// accesses carry exactly the checks of the modeled technology, compiled
// by the Go compiler to real machine code. They are the performance-
// faithful representatives of the compiled classes:
//
//	unsafe   — C linked into the kernel: raw accesses. An out-of-range
//	           address dies on Go's own slice check, the analogue of the
//	           kernel crash the unsafe model accepts.
//	checked  — Modula-3: an explicit bounds compare per access (plus an
//	           explicit NIL-page compare in the nilCheck variant, the
//	           Linux-compiler behaviour of §5.4).
//	sandbox  — Omniware SFI: stores masked into the region; loads masked
//	           only in the readProtect variant (the beta the paper
//	           measured had no read protection).
//
// The per-policy duplication below is deliberate: the check cost must be
// compiled into the instruction stream, not branched over at run time,
// or every variant would pay the same dispatch cost and the differences
// being measured would vanish.

// CompiledGraft adapts hand-written Go entry points to the tech.Graft
// invocation protocol. Entries receive the argument slice and return the
// result; traps propagate by panic and are recovered here.
type CompiledGraft struct {
	m       *mem.Memory
	entries map[string]func(args []uint32) uint32
	arity   map[string]int
}

// NewCompiledGraft builds an empty compiled graft over m.
func NewCompiledGraft(m *mem.Memory) *CompiledGraft {
	return &CompiledGraft{
		m:       m,
		entries: make(map[string]func([]uint32) uint32),
		arity:   make(map[string]int),
	}
}

// Register adds an entry point.
func (c *CompiledGraft) Register(name string, arity int, fn func(args []uint32) uint32) {
	c.entries[name] = fn
	c.arity[name] = arity
}

// Memory implements tech.Graft.
func (c *CompiledGraft) Memory() *mem.Memory { return c.m }

// Direct implements tech.DirectCaller: the resolved entry is called with
// only trap recovery between the kernel and the compiled code.
func (c *CompiledGraft) Direct(entry string) (func(args []uint32) (uint32, error), bool) {
	fn, ok := c.entries[entry]
	if !ok {
		return nil, false
	}
	arity := c.arity[entry]
	return func(args []uint32) (result uint32, err error) {
		if len(args) != arity {
			return 0, fmt.Errorf("compiled: %q takes %d args, got %d", entry, arity, len(args))
		}
		defer func() {
			if r := recover(); r != nil {
				if t, ok := r.(*mem.Trap); ok {
					err = t
					return
				}
				panic(r)
			}
		}()
		return fn(args), nil
	}, true
}

// Invoke implements tech.Graft.
func (c *CompiledGraft) Invoke(entry string, args ...uint32) (result uint32, err error) {
	fn, ok := c.entries[entry]
	if !ok {
		return 0, fmt.Errorf("compiled: no entry %q", entry)
	}
	if len(args) != c.arity[entry] {
		return 0, fmt.Errorf("compiled: %q takes %d args, got %d", entry, c.arity[entry], len(args))
	}
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(*mem.Trap); ok {
				err = t
				return
			}
			panic(r)
		}
	}()
	return fn(args), nil
}

// ---- per-policy access primitives ----
// Each is tiny and inlinable so the check lands in the caller's loop.

func le32(d []byte, a uint32) uint32 {
	return binary.LittleEndian.Uint32(d[a:])
}

func se32(d []byte, a, v uint32) {
	binary.LittleEndian.PutUint32(d[a:], v)
}

// ld32chk is the Modula-3-class load: explicit bounds compare.
func ld32chk(d []byte, a uint32) uint32 {
	if uint64(a)+4 > uint64(len(d)) {
		mem.Throw(mem.TrapOOBLoad, a)
	}
	return binary.LittleEndian.Uint32(d[a:])
}

// st32chk is the Modula-3-class store.
func st32chk(d []byte, a, v uint32) {
	if uint64(a)+4 > uint64(len(d)) {
		mem.Throw(mem.TrapOOBStore, a)
	}
	binary.LittleEndian.PutUint32(d[a:], v)
}

// ld32nil adds the explicit NIL-page compare of the Linux Modula-3
// compiler (§5.4).
func ld32nil(d []byte, a uint32) uint32 {
	if a < mem.NilPageSize {
		mem.Throw(mem.TrapNilDeref, a)
	}
	return ld32chk(d, a)
}

// st32nil is the store counterpart of ld32nil.
func st32nil(d []byte, a, v uint32) {
	if a < mem.NilPageSize {
		mem.Throw(mem.TrapNilDeref, a)
	}
	st32chk(d, a, v)
}

// st32sfi is the Omniware-class store: a single AND masks the address
// into the sandbox.
func st32sfi(d []byte, a, v uint32, mask uint32) {
	binary.LittleEndian.PutUint32(d[a&mask&^3:], v)
}

// ld32sfi is the full-protection SFI load (the §6 "SFI with full
// protection" candidate; the measured beta skipped it).
func ld32sfi(d []byte, a uint32, mask uint32) uint32 {
	return binary.LittleEndian.Uint32(d[a&mask&^3:])
}

func ld8chk(d []byte, a uint32) uint32 {
	if a >= uint32(len(d)) {
		mem.Throw(mem.TrapOOBLoad, a)
	}
	return uint32(d[a])
}

func st8chk(d []byte, a, v uint32) {
	if a >= uint32(len(d)) {
		mem.Throw(mem.TrapOOBStore, a)
	}
	d[a] = byte(v)
}

func ld8nil(d []byte, a uint32) uint32 {
	if a < mem.NilPageSize {
		mem.Throw(mem.TrapNilDeref, a)
	}
	return ld8chk(d, a)
}

func st8nil(d []byte, a, v uint32) {
	if a < mem.NilPageSize {
		mem.Throw(mem.TrapNilDeref, a)
	}
	st8chk(d, a, v)
}
