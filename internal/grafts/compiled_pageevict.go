package grafts

import (
	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

func init() { PageEvict.Compiled = newCompiledPageEvict }

// newCompiledPageEvict is the hand-written compiled-class page-eviction
// graft: the same hot-list walk as the GEL version, with the policy's
// access checks compiled into the loop. The eviction graft performs no
// stores, so the write/jump-only SFI variant runs at unsafe speed — the
// paper's Omniware beta, by contrast, showed 1.4x here because it lacked
// an SFI optimizer (see EXPERIMENTS.md).
func newCompiledPageEvict(cfg mem.Config, m *mem.Memory) (tech.Graft, error) {
	g := NewCompiledGraft(m)
	d := m.Data
	mask := m.Mask()

	var evict func(head uint32) uint32
	switch {
	case cfg.Policy == mem.PolicyChecked && cfg.NilCheck:
		evict = func(head uint32) uint32 { return evictNil(d, head) }
	case cfg.Policy == mem.PolicyChecked:
		evict = func(head uint32) uint32 { return evictChk(d, head) }
	case cfg.Policy == mem.PolicySandbox && cfg.ReadProtect:
		evict = func(head uint32) uint32 { return evictSFIFull(d, head, mask) }
	default: // unsafe, and write/jump-only SFI (no loads to mask)
		evict = func(head uint32) uint32 { return evictRaw(d, head) }
	}
	g.Register("evict", 1, func(args []uint32) uint32 { return evict(args[0]) })
	return g, nil
}

func hotRaw(d []byte, page uint32) bool {
	for n := le32(d, PEHotHeadAddr); n != 0; n = le32(d, n+4) {
		if le32(d, n) == page {
			return true
		}
	}
	return false
}

func evictRaw(d []byte, head uint32) uint32 {
	for n := head; n != 0; n = le32(d, n+4) {
		page := le32(d, n)
		if !hotRaw(d, page) {
			return page
		}
	}
	return le32(d, head)
}

func hotChk(d []byte, page uint32) bool {
	for n := ld32chk(d, PEHotHeadAddr); n != 0; n = ld32chk(d, n+4) {
		if ld32chk(d, n) == page {
			return true
		}
	}
	return false
}

func evictChk(d []byte, head uint32) uint32 {
	for n := head; n != 0; n = ld32chk(d, n+4) {
		page := ld32chk(d, n)
		if !hotChk(d, page) {
			return page
		}
	}
	return ld32chk(d, head)
}

func hotNil(d []byte, page uint32) bool {
	for n := ld32nil(d, PEHotHeadAddr); n != 0; n = ld32nil(d, n+4) {
		if ld32nil(d, n) == page {
			return true
		}
	}
	return false
}

func evictNil(d []byte, head uint32) uint32 {
	for n := head; n != 0; n = ld32nil(d, n+4) {
		page := ld32nil(d, n)
		if !hotNil(d, page) {
			return page
		}
	}
	return ld32nil(d, head)
}

func hotSFIFull(d []byte, page, mask uint32) bool {
	for n := ld32sfi(d, PEHotHeadAddr, mask); n != 0; n = ld32sfi(d, n+4, mask) {
		if ld32sfi(d, n, mask) == page {
			return true
		}
	}
	return false
}

func evictSFIFull(d []byte, head, mask uint32) uint32 {
	for n := head; n != 0; n = ld32sfi(d, n+4, mask) {
		page := ld32sfi(d, n, mask)
		if !hotSFIFull(d, page, mask) {
			return page
		}
	}
	return ld32sfi(d, head, mask)
}
