package grafts

import (
	"fmt"

	"graftlab/internal/ld"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

// Graft-memory layout for the Logical Disk mapping graft.
const (
	LDSegAddr      = 0x1000 // current segment number
	LDFillAddr     = 0x1004 // blocks used in the current segment
	LDSegCountAddr = 0x1008 // total segments on the device (host-initialized)
	LDBlocksAddr   = 0x100C // device capacity in blocks (host-initialized)
	LDMapBase      = 0x2000 // mapping table: u32 per logical block
	// LDMemSize holds the mapping for the paper's 262,144-block disk:
	// 0x2000 + 4*262144 < 2 MiB.
	LDMemSize = 1 << 21
)

// LDMap is the Black Box graft: the bookkeeping of a log-structured
// Logical Disk (§3.3, §5.6). Entry points:
//
//	ld_init()            reset segment state (host fills the map table)
//	ld_write(lblock)     assign next log slot, record mapping, return pblock
//	ld_read(lblock)      return current pblock (0xFFFFFFFF if unmapped)
//
// Sixteen 4 KB blocks per 64 KB segment, as in the paper. The graft
// aborts (rather than corrupting state) on out-of-range blocks or a full
// log; the kernel recovers the trap.
var LDMap = tech.Source{
	Name: "ldmap",
	GEL: `
func ld_init() {
	st32(0x1000, 0);
	st32(0x1004, 0);
	return 0;
}

func ld_write(lblock) {
	if (lblock >= ld32(0x100c)) { abort(1); }
	var seg = ld32(0x1000);
	if (seg >= ld32(0x1008)) { abort(2); }
	var fill = ld32(0x1004);
	var p = seg * 16 + fill;
	st32(0x2000 + lblock * 4, p);
	fill = fill + 1;
	if (fill == 16) {
		fill = 0;
		st32(0x1000, seg + 1);
	}
	st32(0x1004, fill);
	return p;
}

func ld_read(lblock) {
	if (lblock >= ld32(0x100c)) { abort(1); }
	return ld32(0x2000 + lblock * 4);
}
`,
	Tcl: `
proc ld_init {} {
	st32 0x1000 0
	st32 0x1004 0
	return 0
}

proc ld_write {lblock} {
	if {$lblock >= [ld32 0x100c]} { abort 1 }
	set seg [ld32 0x1000]
	if {$seg >= [ld32 0x1008]} { abort 2 }
	set fill [ld32 0x1004]
	set p [expr {$seg * 16 + $fill}]
	st32 [expr {0x2000 + $lblock * 4}] $p
	incr fill
	if {$fill == 16} {
		set fill 0
		st32 0x1000 [expr {$seg + 1}]
	}
	st32 0x1004 $fill
	return $p
}

proc ld_read {lblock} {
	if {$lblock >= [ld32 0x100c]} { abort 1 }
	return [ld32 [expr {0x2000 + $lblock * 4}]]
}
`,
}

// GraftMapper adapts a loaded ldmap graft to the ld.Mapper seam, calling
// through resolved entry points as the kernel's block layer would.
type GraftMapper struct {
	g      tech.Graft
	write  func(args []uint32) (uint32, error)
	read   func(args []uint32) (uint32, error)
	argBuf [1]uint32
}

// NewGraftMapper initializes the graft memory for a device of blocks
// logical blocks and returns the mapper.
func NewGraftMapper(g tech.Graft, blocks uint32) (*GraftMapper, error) {
	m := g.Memory()
	need := uint64(LDMapBase) + 4*uint64(blocks)
	if need > uint64(m.Size()) {
		return nil, fmt.Errorf("grafts: ldmap for %d blocks needs %d bytes, memory has %d", blocks, need, m.Size())
	}
	m.St32U(LDSegCountAddr, blocks/ld.SegmentBlocks)
	m.St32U(LDBlocksAddr, blocks)
	fillUnmapped(m, blocks)
	if _, err := g.Invoke("ld_init"); err != nil {
		return nil, err
	}
	return &GraftMapper{
		g:     g,
		write: tech.ResolveDirect(g, "ld_write"),
		read:  tech.ResolveDirect(g, "ld_read"),
	}, nil
}

func fillUnmapped(m *mem.Memory, blocks uint32) {
	for i := uint32(0); i < blocks; i++ {
		m.St32U(LDMapBase+4*i, ld.Unmapped)
	}
}

// MapWrite implements ld.Mapper.
func (gm *GraftMapper) MapWrite(lblock uint32) (uint32, error) {
	gm.argBuf[0] = lblock
	return gm.write(gm.argBuf[:])
}

// MapRead implements ld.Mapper.
func (gm *GraftMapper) MapRead(lblock uint32) (uint32, error) {
	gm.argBuf[0] = lblock
	return gm.read(gm.argBuf[:])
}

var _ ld.Mapper = (*GraftMapper)(nil)
