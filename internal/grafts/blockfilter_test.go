package grafts

import (
	"bytes"
	"testing"

	"graftlab/internal/kernel"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/workload"
)

// xorGraft is a user-written stream transformation: XOR every byte with
// a configured key (config word at 0x1000, data window from 0x2000).
var xorGraft = tech.Source{
	Name: "xor-block",
	GEL: `
func process(addr, len) {
	var key = ld32(0x1000);
	var i = 0;
	while (i < len) {
		st8(addr + i, ld8(addr + i) ^ key);
		i = i + 1;
	}
	return len;
}
`,
	Tcl: `
proc process {addr len} {
	set key [ld32 0x1000]
	set i 0
	while {$i < $len} {
		st8 [expr {$addr + $i}] [expr {[ld8 [expr {$addr + $i}]] ^ $key}]
		incr i
	}
	return $len
}
`,
}

func newXORBlockFilter(t *testing.T, id tech.ID, key uint32) *BlockFilter {
	t.Helper()
	m := mem.New(1 << 14)
	g, err := tech.Load(id, xorGraft, m, tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.St32U(0x1000, key)
	f, err := NewBlockFilter("xor", g, "process", 0x2000, 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBlockFilterTransformsAcrossTechnologies(t *testing.T) {
	data := make([]byte, 3000)
	workload.FillPattern(data, 11)
	want := make([]byte, len(data))
	for i, b := range data {
		want[i] = b ^ 0x5A
	}
	for _, id := range []tech.ID{tech.NativeUnsafe, tech.NativeSafe, tech.SFI, tech.Bytecode} {
		f := newXORBlockFilter(t, id, 0x5A)
		var out bytes.Buffer
		c := kernel.NewChain(func(p []byte) error { out.Write(p); return nil }, f)
		// Blocks larger than the window exercise re-chunking.
		if _, err := c.Write(data); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), want) {
			t.Fatalf("%s: transform wrong", id)
		}
	}
}

func TestBlockFilterScriptClass(t *testing.T) {
	data := []byte("the quick brown fox")
	f := newXORBlockFilter(t, tech.Script, 7)
	out, err := f.Process(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if out[i] != data[i]^7 {
			t.Fatalf("byte %d: %x", i, out[i])
		}
	}
}

func TestBlockFilterSelfInverse(t *testing.T) {
	data := make([]byte, 1000)
	workload.FillPattern(data, 1)
	f1 := newXORBlockFilter(t, tech.NativeUnsafe, 0xC3)
	f2 := newXORBlockFilter(t, tech.Bytecode, 0xC3)
	var out bytes.Buffer
	c := kernel.NewChain(func(p []byte) error { out.Write(p); return nil }, f1, f2)
	if _, err := c.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("xor twice is not identity")
	}
}

func TestBlockFilterValidation(t *testing.T) {
	m := mem.New(1 << 14)
	g, err := tech.Load(tech.NativeUnsafe, xorGraft, m, tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBlockFilter("x", g, "process", 1<<14, 16); err == nil {
		t.Fatal("window outside memory accepted")
	}
	// A graft lying about its output length is caught.
	liar, err := tech.Load(tech.NativeUnsafe, tech.Source{
		Name: "liar", GEL: `func process(addr, len) { return 0xFFFFFFFF; }`,
	}, mem.New(1<<14), tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lf, err := NewBlockFilter("liar", liar, "process", 0x2000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lf.Process([]byte("data")); err == nil {
		t.Fatal("oversized output length accepted")
	}
}

func TestBlockFilterTrappingGraftSurfacesError(t *testing.T) {
	bad, err := tech.Load(tech.NativeSafe, tech.Source{
		Name: "bad", GEL: `func process(addr, len) { return ld32(0x70000000); }`,
	}, mem.New(1<<14), tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewBlockFilter("bad", bad, "process", 0x2000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Process([]byte("x")); err == nil {
		t.Fatal("trap not surfaced")
	}
}
