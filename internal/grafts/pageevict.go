package grafts

import (
	"fmt"

	"graftlab/internal/kernel"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
)

// Graft-memory layout for the page-eviction graft. All structures sit
// above the NIL page so the explicit-NIL-check ablation runs the same
// source. The kernel (Pager) owns the LRU chain region; the application
// owns the hot list; the graft reads both.
const (
	// PEHotHeadAddr holds the address of the first hot-list node (0 ends
	// the list).
	PEHotHeadAddr = 0x1000
	// PEHotNodeBase is the application-managed hot-node arena; node i is
	// {page u32, next u32} at PEHotNodeBase + 8i.
	PEHotNodeBase = 0x1100
	// PEMaxHot bounds the hot list (the paper's is 128 entries).
	PEMaxHot = 1024
	// PELRUNodeBase is where the Pager mirrors its LRU chain.
	PELRUNodeBase = 0x10000
	// PEMemSize sizes the graft memory: the LRU region supports up to
	// (PEMemSize-PELRUNodeBase)/8 frames.
	PEMemSize = 1 << 20
)

// PageEvict is the Prioritization graft. Entry point:
//
//	evict(lruHead) -> page
//
// walks the kernel's LRU chain from lruHead and returns the first page
// not on the application's hot list, falling back to the kernel's
// candidate if every resident page is hot (§3.1: "if the candidate is on
// the hot list, the graft searches through the queue for an acceptable
// page").
var PageEvict = tech.Source{
	Name: "pageevict",
	GEL: `
// hot reports whether page is on the application's hot list, a linked
// list of {page, next} nodes rooted at 0x1000.
func hot(page) {
	var n = ld32(0x1000);
	while (n != 0) {
		if (ld32(n) == page) { return 1; }
		n = ld32(n + 4);
	}
	return 0;
}

// evict walks the LRU chain (nodes of {page, next}) and returns the
// first non-hot page, or the kernel's candidate if all are hot.
func evict(lruHead) {
	var n = lruHead;
	while (n != 0) {
		var page = ld32(n);
		if (!hot(page)) { return page; }
		n = ld32(n + 4);
	}
	return ld32(lruHead);
}
`,
	Tcl: `
proc hot {page} {
	set n [ld32 0x1000]
	while {$n != 0} {
		if {[ld32 $n] == $page} { return 1 }
		set n [ld32 [expr {$n + 4}]]
	}
	return 0
}
proc evict {lruHead} {
	set n $lruHead
	while {$n != 0} {
		set page [ld32 $n]
		if {![hot $page]} { return $page }
		set n [ld32 [expr {$n + 4}]]
	}
	return [ld32 $lruHead]
}
`,
	// The HiPEC-class rendering: the VM-queue-walking domain this
	// language class was designed for (§2). Nested list scan in 16
	// instructions.
	Hipec: map[string]string{
		"evict": `
	; r0 = LRU head node address; hot-list head pointer at 0x1000
		mov  r7, r0        ; remember the kernel candidate
		movi r6, 0
	outer:
		jeq  r0, r6, allhot
		ldw  r1, [r0+0]    ; candidate page
		movi r2, 0x1000
		ldw  r2, [r2+0]    ; hot-list head
	inner:
		jeq  r2, r6, accept
		ldw  r3, [r2+0]
		jeq  r3, r1, ishot
		ldw  r2, [r2+4]
		jmp  inner
	accept:
		ret  r1
	ishot:
		ldw  r0, [r0+4]    ; next LRU node
		jmp  outer
	allhot:
		ldw  r1, [r7+0]    ; everything hot: accept the candidate
		ret  r1
`,
	},
}

// HotList is the application side of the benchmark: it maintains the hot
// list inside graft memory as the linked list the graft traverses, and
// removes pages as they are faulted in, exactly as the model application
// of §3.1 does ("as each page is processed, its entry is removed from the
// hot list").
type HotList struct {
	m     *mem.Memory
	pages []kernel.PageID
}

// NewHotList binds a hot list to graft memory m.
func NewHotList(m *mem.Memory) *HotList {
	hl := &HotList{m: m}
	hl.Set(nil)
	return hl
}

// Set replaces the hot list contents.
func (hl *HotList) Set(pages []kernel.PageID) {
	if len(pages) > PEMaxHot {
		panic(fmt.Sprintf("grafts: hot list %d exceeds capacity %d", len(pages), PEMaxHot))
	}
	hl.pages = append(hl.pages[:0], pages...)
	hl.rewrite()
}

// Remove deletes page from the hot list if present, returning whether it
// was there.
func (hl *HotList) Remove(page kernel.PageID) bool {
	for i, p := range hl.pages {
		if p == page {
			hl.pages = append(hl.pages[:i], hl.pages[i+1:]...)
			hl.rewrite()
			return true
		}
	}
	return false
}

// Len reports the current hot list length.
func (hl *HotList) Len() int { return len(hl.pages) }

// Contains reports whether page is hot.
func (hl *HotList) Contains(page kernel.PageID) bool {
	for _, p := range hl.pages {
		if p == page {
			return true
		}
	}
	return false
}

// rewrite serializes the list into graft memory as linked nodes.
func (hl *HotList) rewrite() {
	if len(hl.pages) == 0 {
		hl.m.St32U(PEHotHeadAddr, 0)
		return
	}
	hl.m.St32U(PEHotHeadAddr, PEHotNodeBase)
	for i, p := range hl.pages {
		addr := uint32(PEHotNodeBase + 8*i)
		next := uint32(0)
		if i+1 < len(hl.pages) {
			next = addr + 8
		}
		hl.m.St32U(addr, uint32(p))
		hl.m.St32U(addr+4, next)
	}
}

// GraftEvictionPolicy adapts a loaded pageevict graft to the Pager's
// Prioritization hook.
type GraftEvictionPolicy struct {
	g tech.Graft
}

// NewGraftEvictionPolicy wraps g (which must export "evict").
func NewGraftEvictionPolicy(g tech.Graft) *GraftEvictionPolicy {
	return &GraftEvictionPolicy{g: g}
}

// ChooseVictim implements kernel.EvictionPolicy: hand the graft the LRU
// head address and let it propose a victim.
func (p *GraftEvictionPolicy) ChooseVictim(pg *kernel.Pager, candidate kernel.PageID) (kernel.PageID, error) {
	head := pg.HeadAddr()
	if head == 0 {
		return kernel.InvalidPage, nil
	}
	v, err := p.g.Invoke("evict", head)
	if err != nil {
		return kernel.InvalidPage, err
	}
	return kernel.PageID(v), nil
}

// ChooseVictimSpan implements kernel.SpanEvictionPolicy: the policy
// step is recorded as a child of the kernel eviction span, and the
// context is forwarded into the engine so the trace nests
// kernel->policy->engine(->upcall).
func (p *GraftEvictionPolicy) ChooseVictimSpan(ctx telemetry.SpanCtx, pg *kernel.Pager, candidate kernel.PageID) (kernel.PageID, error) {
	head := pg.HeadAddr()
	if head == 0 {
		return kernel.InvalidPage, nil
	}
	sp := telemetry.ChildSpan(ctx, "policy:evict", "policy")
	if !sp.Active() {
		return p.ChooseVictim(pg, candidate)
	}
	v, err := tech.InvokeSpan(p.g, sp.Ctx(), "evict", head)
	var errBit uint64
	if err != nil {
		errBit = 1
	}
	sp.End(uint64(candidate), errBit)
	if err != nil {
		return kernel.InvalidPage, err
	}
	return kernel.PageID(v), nil
}

// NativeEvictPolicy is the hand-written Go reference: the same algorithm
// on the kernel's own structures, no graft machinery at all. It is the
// oracle the graft implementations are tested against.
type NativeEvictPolicy struct {
	Hot *HotList
}

// ChooseVictim implements kernel.EvictionPolicy.
func (p *NativeEvictPolicy) ChooseVictim(pg *kernel.Pager, candidate kernel.PageID) (kernel.PageID, error) {
	for _, page := range pg.LRUPages() {
		if !p.Hot.Contains(page) {
			return page, nil
		}
	}
	return candidate, nil
}
