package grafts

import (
	"fmt"

	"graftlab/internal/kernel"
	"graftlab/internal/md5x"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

// Graft-memory layout for the MD5 stream graft.
const (
	MDStateAddr = 0x1000 // 4 u32: a, b, c, d
	MDLenLoAddr = 0x1010 // bit length, low word
	MDLenHiAddr = 0x1014 // bit length, high word
	MDTailCount = 0x1018 // bytes buffered in the tail block
	MDTailBuf   = 0x1040 // 64-byte partial-block buffer
	MDKAddr     = 0x1100 // 64 u32 sine constants (host-initialized)
	MDSAddr     = 0x1300 // 16 u32 rotation table (host-initialized)
	MDOutAddr   = 0x1400 // 16-byte digest output
	MDBufAddr   = 0x2000 // host-fed data window
	MDMemSize   = 1 << 17
	// MDBufCap is the largest chunk the host may feed per update call.
	MDBufCap = MDMemSize - MDBufAddr
)

// MD5 is the Stream graft: a complete streaming implementation of RFC
// 1321 (§3.2, §5.5). Entry points:
//
//	md5_init()                 reset state
//	md5_update(addr, len)      absorb len bytes at addr
//	md5_final(out)             pad, write 16-byte digest at out
//
// The algorithm is the loop-rolled RFC formulation: per step i, auxiliary
// function F/G/H/I, message index g(i), constant K[i], rotation
// S[(i/16)*4 + i%4]. The K and S tables are marshaled into graft memory
// by the host (SetupMD5Memory).
var MD5 = tech.Source{
	Name: "md5",
	GEL: `
// md5_transform absorbs one 64-byte block at block.
func md5_transform(block) {
	var oa = ld32(0x1000);
	var ob = ld32(0x1004);
	var oc = ld32(0x1008);
	var od = ld32(0x100c);
	var a = oa;
	var b = ob;
	var c = oc;
	var d = od;
	var i = 0;
	while (i < 64) {
		var f = 0;
		var g = 0;
		if (i < 16) {
			f = (b & c) | (~b & d);
			g = i;
		} else if (i < 32) {
			f = (d & b) | (~d & c);
			g = (5 * i + 1) % 16;
		} else if (i < 48) {
			f = b ^ c ^ d;
			g = (3 * i + 5) % 16;
		} else {
			f = c ^ (b | ~d);
			g = (7 * i) % 16;
		}
		f = f + a + ld32(0x1100 + i * 4) + ld32(block + g * 4);
		a = d;
		d = c;
		c = b;
		b = b + rotl(f, ld32(0x1300 + ((i / 16) * 4 + i % 4) * 4));
		i = i + 1;
	}
	st32(0x1000, oa + a);
	st32(0x1004, ob + b);
	st32(0x1008, oc + c);
	st32(0x100c, od + d);
	return 0;
}

func md5_init() {
	st32(0x1000, 0x67452301);
	st32(0x1004, 0xefcdab89);
	st32(0x1008, 0x98badcfe);
	st32(0x100c, 0x10325476);
	st32(0x1010, 0);
	st32(0x1014, 0);
	st32(0x1018, 0);
	return 0;
}

// md5_addlen adds nbytes to the 64-bit bit counter.
func md5_addlen(nbytes) {
	var lo = ld32(0x1010);
	var nlo = lo + nbytes * 8;
	if (nlo < lo) { st32(0x1014, ld32(0x1014) + 1); }
	st32(0x1014, ld32(0x1014) + (nbytes >> 29));
	st32(0x1010, nlo);
	return 0;
}

func md5_update(addr, len) {
	md5_addlen(len);
	var tc = ld32(0x1018);
	if (tc != 0) {
		while (tc < 64 && len != 0) {
			st8(0x1040 + tc, ld8(addr));
			tc = tc + 1;
			addr = addr + 1;
			len = len - 1;
		}
		if (tc == 64) {
			md5_transform(0x1040);
			tc = 0;
		}
		st32(0x1018, tc);
	}
	while (len >= 64) {
		md5_transform(addr);
		addr = addr + 64;
		len = len - 64;
	}
	while (len != 0) {
		st8(0x1040 + tc, ld8(addr));
		tc = tc + 1;
		addr = addr + 1;
		len = len - 1;
	}
	st32(0x1018, tc);
	return 0;
}

func md5_final(out) {
	var lenlo = ld32(0x1010);
	var lenhi = ld32(0x1014);
	var tc = ld32(0x1018);
	st8(0x1040 + tc, 0x80);
	tc = tc + 1;
	if (tc > 56) {
		while (tc < 64) { st8(0x1040 + tc, 0); tc = tc + 1; }
		md5_transform(0x1040);
		tc = 0;
	}
	while (tc < 56) { st8(0x1040 + tc, 0); tc = tc + 1; }
	st32(0x1040 + 56, lenlo);
	st32(0x1040 + 60, lenhi);
	md5_transform(0x1040);
	st32(out, ld32(0x1000));
	st32(out + 4, ld32(0x1004));
	st32(out + 8, ld32(0x1008));
	st32(out + 12, ld32(0x100c));
	return 0;
}
`,
	Tcl: `
proc md5_transform {block} {
	set oa [ld32 0x1000]
	set ob [ld32 0x1004]
	set oc [ld32 0x1008]
	set od [ld32 0x100c]
	set a $oa
	set b $ob
	set c $oc
	set d $od
	set i 0
	while {$i < 64} {
		if {$i < 16} {
			set f [expr {($b & $c) | (~$b & $d)}]
			set g $i
		} elseif {$i < 32} {
			set f [expr {($d & $b) | (~$d & $c)}]
			set g [expr {(5 * $i + 1) % 16}]
		} elseif {$i < 48} {
			set f [expr {$b ^ $c ^ $d}]
			set g [expr {(3 * $i + 5) % 16}]
		} else {
			set f [expr {$c ^ ($b | ~$d)}]
			set g [expr {(7 * $i) % 16}]
		}
		set f [expr {$f + $a + [ld32 [expr {0x1100 + $i * 4}]] + [ld32 [expr {$block + $g * 4}]]}]
		set a $d
		set d $c
		set c $b
		set s [ld32 [expr {0x1300 + (($i / 16) * 4 + $i % 4) * 4}]]
		set b [expr {$b + (($f << $s) | ($f >> (32 - $s)))}]
		incr i
	}
	st32 0x1000 [expr {$oa + $a}]
	st32 0x1004 [expr {$ob + $b}]
	st32 0x1008 [expr {$oc + $c}]
	st32 0x100c [expr {$od + $d}]
	return 0
}

proc md5_init {} {
	st32 0x1000 0x67452301
	st32 0x1004 0xefcdab89
	st32 0x1008 0x98badcfe
	st32 0x100c 0x10325476
	st32 0x1010 0
	st32 0x1014 0
	st32 0x1018 0
	return 0
}

proc md5_addlen {nbytes} {
	set lo [ld32 0x1010]
	set nlo [expr {$lo + $nbytes * 8}]
	if {$nlo < $lo} { st32 0x1014 [expr {[ld32 0x1014] + 1}] }
	st32 0x1014 [expr {[ld32 0x1014] + ($nbytes >> 29)}]
	st32 0x1010 $nlo
	return 0
}

proc md5_update {addr len} {
	md5_addlen $len
	set tc [ld32 0x1018]
	if {$tc != 0} {
		while {$tc < 64 && $len != 0} {
			st8 [expr {0x1040 + $tc}] [ld8 $addr]
			incr tc
			incr addr
			set len [expr {$len - 1}]
		}
		if {$tc == 64} {
			md5_transform 0x1040
			set tc 0
		}
		st32 0x1018 $tc
	}
	while {$len >= 64} {
		md5_transform $addr
		set addr [expr {$addr + 64}]
		set len [expr {$len - 64}]
	}
	while {$len != 0} {
		st8 [expr {0x1040 + $tc}] [ld8 $addr]
		incr tc
		incr addr
		set len [expr {$len - 1}]
	}
	st32 0x1018 $tc
	return 0
}

proc md5_final {out} {
	set lenlo [ld32 0x1010]
	set lenhi [ld32 0x1014]
	set tc [ld32 0x1018]
	st8 [expr {0x1040 + $tc}] 0x80
	incr tc
	if {$tc > 56} {
		while {$tc < 64} { st8 [expr {0x1040 + $tc}] 0; incr tc }
		md5_transform 0x1040
		set tc 0
	}
	while {$tc < 56} { st8 [expr {0x1040 + $tc}] 0; incr tc }
	st32 [expr {0x1040 + 56}] $lenlo
	st32 [expr {0x1040 + 60}] $lenhi
	md5_transform 0x1040
	st32 $out [ld32 0x1000]
	st32 [expr {$out + 4}] [ld32 0x1004]
	st32 [expr {$out + 8}] [ld32 0x1008]
	st32 [expr {$out + 12}] [ld32 0x100c]
	return 0
}
`,
}

// SetupMD5Memory marshals the K and S tables into graft memory; call once
// after allocating the memory, before md5_init.
func SetupMD5Memory(m *mem.Memory) {
	for i, k := range md5x.K {
		m.St32U(uint32(MDKAddr+4*i), k)
	}
	for i, s := range md5x.S {
		m.St32U(uint32(MDSAddr+4*i), s)
	}
}

// MD5Graft is the host adapter: a hash-like API over a loaded md5 graft.
type MD5Graft struct {
	g tech.Graft
	m *mem.Memory
}

// NewMD5Graft prepares tables and initializes state in g's memory.
func NewMD5Graft(g tech.Graft) (*MD5Graft, error) {
	h := &MD5Graft{g: g, m: g.Memory()}
	if h.m.Size() < MDMemSize {
		return nil, fmt.Errorf("grafts: md5 needs %d bytes of graft memory, have %d", MDMemSize, h.m.Size())
	}
	SetupMD5Memory(h.m)
	return h, h.Reset()
}

// Reset reinitializes the digest state.
func (h *MD5Graft) Reset() error {
	_, err := h.g.Invoke("md5_init")
	return err
}

// Write absorbs p, feeding the graft in window-sized chunks.
func (h *MD5Graft) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		n := len(p)
		if n > MDBufCap {
			n = MDBufCap
		}
		h.m.WriteAt(MDBufAddr, p[:n])
		if _, err := h.g.Invoke("md5_update", MDBufAddr, uint32(n)); err != nil {
			return 0, err
		}
		p = p[n:]
	}
	return total, nil
}

// Sum finalizes and returns the digest. The graft state is consumed;
// call Reset to reuse.
func (h *MD5Graft) Sum() ([md5x.Size]byte, error) {
	var out [md5x.Size]byte
	if _, err := h.g.Invoke("md5_final", MDOutAddr); err != nil {
		return out, err
	}
	h.m.ReadAt(MDOutAddr, out[:])
	return out, nil
}

// MD5Filter adapts an MD5Graft to the kernel's stream-filter interface:
// an identity filter that fingerprints everything flowing past (§3.2's
// "the data output is the same as the input; when the algorithm
// completes, the graft can be queried for the fingerprint").
type MD5Filter struct {
	h      *MD5Graft
	digest [md5x.Size]byte
	done   bool
}

// NewMD5Filter builds the filter.
func NewMD5Filter(h *MD5Graft) *MD5Filter { return &MD5Filter{h: h} }

// Name implements kernel.Filter.
func (f *MD5Filter) Name() string { return "md5" }

// Process implements kernel.Filter: fingerprint and pass through.
func (f *MD5Filter) Process(p []byte) ([]byte, error) {
	if _, err := f.h.Write(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Finish implements kernel.Filter: latch the digest.
func (f *MD5Filter) Finish() ([]byte, error) {
	d, err := f.h.Sum()
	if err != nil {
		return nil, err
	}
	f.digest = d
	f.done = true
	return nil, nil
}

// Digest returns the fingerprint; valid after the chain is closed.
func (f *MD5Filter) Digest() ([md5x.Size]byte, bool) { return f.digest, f.done }

var _ kernel.Filter = (*MD5Filter)(nil)
