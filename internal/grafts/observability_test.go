package grafts

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"graftlab/internal/kernel"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
	"graftlab/internal/upcall"
	"graftlab/internal/workload"
)

// TestMD5ProfileLineAttribution is the acceptance bar for the sampling
// profiler: on the MD5 graft — the heaviest bytecode workload — at
// least 95% of the sampled fuel must map back to source lines through
// the compile-time line table.
func TestMD5ProfileLineAttribution(t *testing.T) {
	if _, err := telemetry.EnableProfiler(256); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(telemetry.DisableProfiler)

	g, err := tech.Load(tech.Bytecode, MD5, mem.New(MDMemSize), tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewMD5Graft(g)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1<<14)
	workload.FillPattern(data, 5)
	if _, err := h.Write(data); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Sum(); err != nil {
		t.Fatal(err)
	}

	p := telemetry.CurrentProfile()
	samples := p.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples collected from the MD5 run")
	}
	var total, lined int64
	for _, s := range samples {
		if s.Graft != MD5.Name || s.Tech != string(tech.Bytecode) {
			continue
		}
		total += s.Fuel
		if s.Line > 0 {
			lined += s.Fuel
		}
	}
	if total == 0 {
		t.Fatal("no fuel attributed to the MD5 pair")
	}
	if share := float64(lined) / float64(total); share < 0.95 {
		t.Errorf("only %.1f%% of MD5 fuel maps to source lines, want >=95%%", 100*share)
	}
}

// TestNestedSpansAcrossStack drives the full Table-2-plus-pool stack —
// ShardedPager faults consulting a PooledEvictionPolicy whose pooled
// engines live behind upcall domains — with span tracing on, and
// asserts one eviction exports as the nested causal chain
// kernel -> policy -> engine -> upcall, all on one track, and that the
// export is loadable Chrome trace-event JSON.
func TestNestedSpansAcrossStack(t *testing.T) {
	telemetry.SetEnabled(true)
	st := telemetry.EnableSpans(1 << 10)
	if err := telemetry.SetSpanSampleEvery(1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		telemetry.DisableSpans()
		_ = telemetry.SetSpanSampleEvery(64)
		telemetry.SetEnabled(false)
		telemetry.ResetMetrics()
	})

	pool, err := tech.NewPool(tech.NativeSafe, PageEvict, tech.Options{}, tech.PoolConfig{
		MemSize: PEMemSize,
		Setup:   SetupHotList([]kernel.PageID{10, 11}),
		Wrap:    upcall.PoolWrapper(10 * time.Microsecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)

	sp, err := kernel.NewShardedPager(kernel.ShardedPagerConfig{Shards: 1, Frames: 3})
	if err != nil {
		t.Fatal(err)
	}
	sp.SetPolicy(NewPooledEvictionPolicy(pool))
	for _, p := range []kernel.PageID{10, 11, 12, 13} {
		if _, err := sp.Access(p); err != nil {
			t.Fatal(err)
		}
	}
	if sp.Resident(12) {
		t.Fatal("graft did not steer the eviction to 12")
	}

	byID := map[telemetry.SpanID]telemetry.SpanRecord{}
	byCat := map[string][]telemetry.SpanRecord{}
	for _, s := range st.Spans() {
		byID[s.ID] = s
		byCat[s.Cat] = append(byCat[s.Cat], s)
	}
	if len(byCat["upcall"]) == 0 {
		t.Fatalf("no upcall span recorded; cats: %v", keys(byCat))
	}
	// Walk one upcall span back to its root and require the full chain.
	up := byCat["upcall"][0]
	eng, ok := byID[up.Parent]
	if !ok || eng.Cat != "engine" {
		t.Fatalf("upcall's parent is %+v, want an engine span", eng)
	}
	pol, ok := byID[eng.Parent]
	if !ok || pol.Cat != "policy" || pol.Name != "policy:evict" {
		t.Fatalf("engine's parent is %+v, want policy:evict", pol)
	}
	root, ok := byID[pol.Parent]
	if !ok || root.Cat != "kernel" || root.Name != "kernel:evict" || root.Parent != 0 {
		t.Fatalf("policy's parent is %+v, want the kernel:evict root", root)
	}
	for _, s := range []telemetry.SpanRecord{up, eng, pol} {
		if s.Track != root.Track {
			t.Errorf("span %q on track %d, root on %d", s.Name, s.Track, root.Track)
		}
	}

	var buf bytes.Buffer
	if err := st.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("span export is not valid Chrome trace JSON: %v", err)
	}
	if len(trace.TraceEvents) < 4 {
		t.Fatalf("trace has %d events, want the full chain", len(trace.TraceEvents))
	}
}

func keys(m map[string][]telemetry.SpanRecord) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
