package grafts

import (
	"fmt"

	"graftlab/internal/kernel"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
)

// PooledEvictionPolicy carries the pageevict graft on the sharded
// pager's Prioritization hook. The single-threaded arrangement — the
// pager mirrors its LRU chain into the one graft memory the policy
// reads — cannot survive concurrency: the hook runs outside the shard
// lock, so the chain could change under the graft mid-walk. Instead,
// every ChooseVictim checks an instance out of a tech.Pool, writes the
// shard's LRU snapshot (taken under the lock by the kernel) as the
// familiar {page, next} node chain into that instance's private memory,
// and invokes the unmodified graft on it. The graft sees exactly the
// data structure it was written for; the kernel revalidates the
// proposal after the walk, as §3.1 requires.
//
// The hot list must be baked into each instance by the pool's Setup
// (SetupHotList); it is application state that changes only between
// runs, not per decision.
type PooledEvictionPolicy struct {
	pool *tech.Pool
}

// NewPooledEvictionPolicy wraps a pool of pageevict instances (each
// exporting "evict" and laid out per the PE* constants).
func NewPooledEvictionPolicy(pool *tech.Pool) *PooledEvictionPolicy {
	return &PooledEvictionPolicy{pool: pool}
}

// SetupHotList returns a tech.PoolConfig Setup that writes pages as the
// application hot list into each fresh instance memory.
func SetupHotList(pages []kernel.PageID) func(m *mem.Memory) error {
	return func(m *mem.Memory) error {
		if len(pages) > PEMaxHot {
			return fmt.Errorf("grafts: hot list %d exceeds capacity %d", len(pages), PEMaxHot)
		}
		hl := NewHotList(m)
		hl.Set(pages)
		return nil
	}
}

// ChooseVictim implements kernel.ShardPolicy.
func (p *PooledEvictionPolicy) ChooseVictim(shard int, lru []kernel.PageID, candidate kernel.PageID) (kernel.PageID, error) {
	return p.choose(telemetry.SpanCtx{}, lru)
}

// ChooseVictimSpan implements kernel.SpanShardPolicy: the policy step
// is recorded as a child of the kernel eviction span and the context is
// forwarded into the checked-out pool instance's engine.
func (p *PooledEvictionPolicy) ChooseVictimSpan(ctx telemetry.SpanCtx, shard int, lru []kernel.PageID, candidate kernel.PageID) (kernel.PageID, error) {
	sp := telemetry.ChildSpan(ctx, "policy:evict", "policy")
	if !sp.Active() {
		return p.choose(telemetry.SpanCtx{}, lru)
	}
	v, err := p.choose(sp.Ctx(), lru)
	var errBit uint64
	if err != nil {
		errBit = 1
	}
	sp.End(uint64(shard), errBit)
	return v, err
}

// choose checks an instance out, mirrors the LRU snapshot into its
// memory, and runs the graft; a live ctx is forwarded so the engine
// invocation nests under the policy span.
func (p *PooledEvictionPolicy) choose(ctx telemetry.SpanCtx, lru []kernel.PageID) (kernel.PageID, error) {
	if len(lru) == 0 {
		return kernel.InvalidPage, nil
	}
	it, err := p.pool.Get()
	if err != nil {
		return kernel.InvalidPage, err
	}
	m := it.Memory()
	if need := uint64(PELRUNodeBase) + uint64(len(lru))*kernel.LRUNodeSize; need > uint64(m.Size()) {
		p.pool.Put(it)
		return kernel.InvalidPage, fmt.Errorf("grafts: LRU snapshot of %d nodes needs %d bytes, memory has %d",
			len(lru), need, m.Size())
	}
	for i, page := range lru {
		addr := uint32(PELRUNodeBase + kernel.LRUNodeSize*i)
		next := uint32(0)
		if i+1 < len(lru) {
			next = addr + kernel.LRUNodeSize
		}
		m.St32U(addr, uint32(page))
		m.St32U(addr+4, next)
	}
	var v uint32
	if ctx.Active() {
		v, err = tech.InvokeSpan(it.Graft, ctx, "evict", PELRUNodeBase)
	} else {
		v, err = it.Invoke("evict", PELRUNodeBase)
	}
	p.pool.Put(it)
	if err != nil {
		return kernel.InvalidPage, err
	}
	return kernel.PageID(v), nil
}

var _ kernel.ShardPolicy = (*PooledEvictionPolicy)(nil)
var _ kernel.SpanShardPolicy = (*PooledEvictionPolicy)(nil)
