package grafts

import (
	"errors"
	"testing"

	"graftlab/internal/disk"
	"graftlab/internal/ld"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/vclock"
	"graftlab/internal/workload"
)

func loadMapper(t *testing.T, id tech.ID, blocks uint32) *GraftMapper {
	t.Helper()
	g, err := tech.Load(id, LDMap, mem.New(LDMemSize), tech.Options{})
	if err != nil {
		t.Fatalf("load ldmap under %s: %v", id, err)
	}
	gm, err := NewGraftMapper(g, blocks)
	if err != nil {
		t.Fatal(err)
	}
	return gm
}

func TestGraftMapperMatchesNative(t *testing.T) {
	const blocks = 4096
	for _, id := range []tech.ID{
		tech.CompiledUnsafe, tech.CompiledSafe, tech.CompiledSafeNil,
		tech.CompiledSFI, tech.CompiledSFIFull,
		tech.NativeUnsafe, tech.NativeSafe, tech.SFI, tech.Bytecode,
	} {
		t.Run(string(id), func(t *testing.T) {
			gm := loadMapper(t, id, blocks)
			nm := ld.NewNativeMapper(blocks)
			stream := workload.NewSkewed(blocks, 7)
			for i := 0; i < 3000; i++ {
				lb := stream.Next()
				gp, gerr := gm.MapWrite(lb)
				np, nerr := nm.MapWrite(lb)
				if (gerr != nil) != (nerr != nil) {
					t.Fatalf("write %d: errors diverge: %v vs %v", i, gerr, nerr)
				}
				if gp != np {
					t.Fatalf("write %d: graft=%d native=%d", i, gp, np)
				}
			}
			check := workload.NewUniform(blocks, 8)
			for i := 0; i < 1000; i++ {
				lb := check.Next()
				gp, gerr := gm.MapRead(lb)
				np, nerr := nm.MapRead(lb)
				if gerr != nil || nerr != nil {
					t.Fatalf("read: %v %v", gerr, nerr)
				}
				if gp != np {
					t.Fatalf("read %d: graft=%d native=%d", lb, gp, np)
				}
			}
		})
	}
}

func TestGraftMapperScriptClass(t *testing.T) {
	const blocks = 1024
	gm := loadMapper(t, tech.Script, blocks)
	nm := ld.NewNativeMapper(blocks)
	stream := workload.NewSkewed(blocks, 7)
	for i := 0; i < 200; i++ {
		lb := stream.Next()
		gp, gerr := gm.MapWrite(lb)
		np, nerr := nm.MapWrite(lb)
		if gerr != nil || nerr != nil {
			t.Fatalf("write: %v %v", gerr, nerr)
		}
		if gp != np {
			t.Fatalf("write %d: graft=%d native=%d", i, gp, np)
		}
	}
}

func TestMapperSequentialAssignment(t *testing.T) {
	gm := loadMapper(t, tech.NativeUnsafe, 256)
	// Physical blocks are handed out strictly sequentially regardless of
	// logical block order — that is the log-structuring.
	for i := uint32(0); i < 64; i++ {
		lb := (i * 37) % 256 // scattered logical blocks
		p, err := gm.MapWrite(lb)
		if err != nil {
			t.Fatal(err)
		}
		if p != i {
			t.Fatalf("write %d: physical %d, want %d", i, p, i)
		}
	}
}

func TestMapperRewriteUpdatesMapping(t *testing.T) {
	gm := loadMapper(t, tech.NativeUnsafe, 256)
	p1, err := gm.MapWrite(5)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := gm.MapWrite(5)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("rewrite reused a log slot")
	}
	got, err := gm.MapRead(5)
	if err != nil {
		t.Fatal(err)
	}
	if got != p2 {
		t.Fatalf("MapRead = %d, want latest %d", got, p2)
	}
}

func TestMapperUnmappedRead(t *testing.T) {
	gm := loadMapper(t, tech.NativeUnsafe, 256)
	p, err := gm.MapRead(17)
	if err != nil {
		t.Fatal(err)
	}
	if p != ld.Unmapped {
		t.Fatalf("unwritten block mapped to %d", p)
	}
}

func TestMapperTrapsOnBadBlockAndFullLog(t *testing.T) {
	gm := loadMapper(t, tech.NativeSafe, 64)
	if _, err := gm.MapWrite(64); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	var trap *mem.Trap
	_, err := gm.MapRead(9999)
	if !errors.As(err, &trap) || trap.Kind != mem.TrapAbort {
		t.Fatalf("out-of-range read: %v", err)
	}
	// Fill the log: 64 blocks = 4 segments; the 65th write must abort.
	for i := 0; i < 64; i++ {
		if _, err := gm.MapWrite(uint32(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	_, err = gm.MapWrite(0)
	if !errors.As(err, &trap) || trap.Kind != mem.TrapAbort || trap.Code != 2 {
		t.Fatalf("full log: %v", err)
	}
}

func TestMapperRejectsSmallMemory(t *testing.T) {
	g, err := tech.Load(tech.NativeUnsafe, LDMap, mem.New(1<<13), tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGraftMapper(g, 1<<20); err == nil {
		t.Fatal("expected capacity error")
	}
}

// TestLDEndToEndWithGraft runs the full logical-disk stack — graft mapper,
// segment batching, simulated disk — and checks the batching invariant:
// one physically sequential flush per 16 writes.
func TestLDEndToEndWithGraft(t *testing.T) {
	clock := &vclock.Clock{}
	geo := disk.DefaultGeometry()
	geo.Blocks = 16384
	dev := disk.New(geo, clock)
	gm := loadMapper(t, tech.NativeUnsafe, geo.Blocks)
	l := ld.New(dev, gm, false)

	stream := workload.NewSkewed(geo.Blocks, 99)
	const writes = 16 * 200
	for i := 0; i < writes; i++ {
		if err := l.Write(stream.Next()); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.SegmentFlush != writes/ld.SegmentBlocks {
		t.Errorf("flushes = %d, want %d", st.SegmentFlush, writes/ld.SegmentBlocks)
	}
	ds := dev.Stats()
	if ds.Writes != uint64(st.SegmentFlush) {
		t.Errorf("device writes %d != flushes %d", ds.Writes, st.SegmentFlush)
	}
	// Log flushes are sequential: at most the first pays a real seek.
	if ds.Seeks > 1 {
		t.Errorf("sequential log paid %d full seeks", ds.Seeks)
	}
}
