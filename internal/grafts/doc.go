// Package grafts contains the paper's three representative kernel
// extensions (§3), each written once in GEL (carried by the compiled and
// bytecode technology classes) and once in mini-Tcl (carried by the
// script class), plus the host-side glue that marshals kernel data
// structures into graft memory:
//
//   - pageevict: the Prioritization graft — a VM page-eviction policy
//     that walks the kernel's LRU chain and rejects candidates on the
//     application's hot list (§3.1, Table 2).
//   - md5: the Stream graft — a complete streaming MD5 (RFC 1321) that
//     fingerprints data as it flows through a kernel filter chain (§3.2,
//     Table 5).
//   - ldmap: the Black Box graft — the logical→physical mapping
//     bookkeeping of a Logical Disk layer (§3.3, Table 6).
//
// Each graft also has a hand-written Go reference implementation, used
// both as the measurement baseline and as the correctness oracle for the
// GEL and Tcl versions.
package grafts
