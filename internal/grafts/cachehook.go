package grafts

import (
	"graftlab/internal/kernel"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

// Graft-memory layout for the buffer-cache hook.
const (
	// BCCountAddr holds the number of cached blocks.
	BCCountAddr = 0x1000
	// BCBase is the cached-block array in use order (LRU first).
	BCBase = 0x1010
	// BCMaxBlocks bounds the marshaled cache contents.
	BCMaxBlocks = 4096
	// BCPinCountAddr / BCPinBase hold the application's pinned set.
	BCPinCountAddr = 0x8000
	BCPinBase      = 0x8010
	// BCMaxPins bounds the pinned set.
	BCMaxPins = 256
	// BCMemSize sizes the graft memory.
	BCMemSize = 1 << 16
	// BCDecline defers to the kernel's built-in policy.
	BCDecline = 0xFFFFFFFF
)

// CacheHook is the buffer-cache counterpart of the page-eviction graft:
// §2's Cao et al. domain, solved the general way the paper argues for.
// Entry:
//
//	pickvictim(count) -> index into the use-order array, or BCDecline
//
// This policy evicts the least recently used block that is not on the
// application's pinned list.
var CacheHook = tech.Source{
	Name: "cachehook",
	GEL: `
func pinned(block) {
	var n = ld32(0x8000);
	var i = 0;
	while (i < n) {
		if (ld32(0x8010 + i * 4) == block) { return 1; }
		i = i + 1;
	}
	return 0;
}

func pickvictim(count) {
	var i = 0;
	while (i < count) {
		if (!pinned(ld32(0x1010 + i * 4))) { return i; }
		i = i + 1;
	}
	return 0xFFFFFFFF;
}
`,
	Tcl: `
proc pinned {block} {
	set n [ld32 0x8000]
	set i 0
	while {$i < $n} {
		if {[ld32 [expr {0x8010 + $i * 4}]] == $block} { return 1 }
		incr i
	}
	return 0
}
proc pickvictim {count} {
	set i 0
	while {$i < $count} {
		if {![pinned [ld32 [expr {0x1010 + $i * 4}]]]} { return $i }
		incr i
	}
	return 0xFFFFFFFF
}
`,
	Compiled: newCompiledCacheHook,
	Hipec: map[string]string{
		"pickvictim": `
	; r0 = cached block count; blocks at 0x1010; pins at 0x8000/0x8010
		movi r9, 0x8000
		ldw  r9, [r9+0]      ; pin count
		movi r1, 0           ; i over cached blocks
		movi r4, 0x1010      ; block pointer
	outer:
		jge  r1, r0, none
		ldw  r5, [r4+0]      ; candidate block
		movi r6, 0x8010      ; pin pointer
		movi r7, 0           ; j over pins
	inner:
		jge  r7, r9, notpinned
		ldw  r8, [r6+0]
		jeq  r8, r5, pinned
		addi r7, r7, 1
		addi r6, r6, 4
		jmp  inner
	notpinned:
		ret  r1
	pinned:
		addi r1, r1, 1
		addi r4, r4, 4
		jmp  outer
	none:
		movi r1, 0xFFFFFFFF
		ret  r1
`,
	},
}

func newCompiledCacheHook(cfg mem.Config, m *mem.Memory) (tech.Graft, error) {
	g := NewCompiledGraft(m)
	d := m.Data
	mask := m.Mask()
	var ld func([]byte, uint32) uint32
	switch {
	case cfg.Policy == mem.PolicyChecked && cfg.NilCheck:
		ld = ld32nil
	case cfg.Policy == mem.PolicyChecked:
		ld = ld32chk
	case cfg.Policy == mem.PolicySandbox && cfg.ReadProtect:
		ld = func(d []byte, a uint32) uint32 { return ld32sfi(d, a, mask) }
	default:
		ld = le32
	}
	pinned := func(block uint32) bool {
		n := ld(d, BCPinCountAddr)
		for i := uint32(0); i < n; i++ {
			if ld(d, BCPinBase+i*4) == block {
				return true
			}
		}
		return false
	}
	g.Register("pickvictim", 1, func(a []uint32) uint32 {
		count := a[0]
		for i := uint32(0); i < count; i++ {
			if !pinned(ld(d, BCBase+i*4)) {
				return i
			}
		}
		return BCDecline
	})
	return g, nil
}

// PinSet is the application side: the pinned blocks, mirrored into graft
// memory.
type PinSet struct {
	m    *mem.Memory
	pins []uint32
}

// NewPinSet binds a pin set to graft memory.
func NewPinSet(m *mem.Memory) *PinSet {
	p := &PinSet{m: m}
	p.Set(nil)
	return p
}

// Set replaces the pinned blocks.
func (p *PinSet) Set(blocks []uint32) {
	if len(blocks) > BCMaxPins {
		blocks = blocks[:BCMaxPins]
	}
	p.pins = append(p.pins[:0], blocks...)
	p.m.St32U(BCPinCountAddr, uint32(len(p.pins)))
	for i, b := range p.pins {
		p.m.St32U(uint32(BCPinBase+4*i), b)
	}
}

// Contains reports whether block is pinned.
func (p *PinSet) Contains(block uint32) bool {
	for _, b := range p.pins {
		if b == block {
			return true
		}
	}
	return false
}

// NewGraftCacheHook adapts a loaded cachehook graft to the buffer cache:
// it marshals the use-order array before each decision and maps the
// returned index back to a block.
func NewGraftCacheHook(g tech.Graft) kernel.CacheHook {
	m := g.Memory()
	call := tech.ResolveDirect(g, "pickvictim")
	args := make([]uint32, 1)
	return func(order []uint32) uint32 {
		n := len(order)
		if n > BCMaxBlocks {
			n = BCMaxBlocks
		}
		m.St32U(BCCountAddr, uint32(n))
		for i := 0; i < n; i++ {
			m.St32U(uint32(BCBase+4*i), order[i])
		}
		args[0] = uint32(n)
		v, err := call(args)
		if err != nil || v == BCDecline || v >= uint32(n) {
			return kernel.NoBlock
		}
		return order[v]
	}
}
