package grafts

import (
	"testing"
	"time"

	"graftlab/internal/kernel"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/vclock"
	"graftlab/internal/workload"
)

var hookTechs = []tech.ID{
	tech.CompiledUnsafe, tech.CompiledSafe, tech.CompiledSafeNil,
	tech.CompiledSFI, tech.CompiledSFIFull,
	tech.NativeUnsafe, tech.NativeSafe, tech.Bytecode, tech.Script,
	tech.Domain,
}

func TestSchedGraftPrefersIdleServer(t *testing.T) {
	for _, id := range hookTechs {
		id := id
		t.Run(string(id), func(t *testing.T) {
			g, err := tech.Load(id, SchedPolicy, mem.New(SCMemSize), tech.Options{})
			if err != nil {
				t.Fatal(err)
			}
			s := kernel.NewScheduler(time.Millisecond, &vclock.Clock{})
			s.Spawn("client-a", 1)
			srv1 := s.Spawn("server-1", 2)
			srv2 := s.Spawn("server-2", 2)
			s.SetPolicy(NewGraftSchedPolicy(g))

			ticks := 6
			if id == tech.Script {
				ticks = 4
			}
			counts := map[int]int{}
			for i := 0; i < ticks; i++ {
				p, err := s.Tick()
				if err != nil {
					t.Fatal(err)
				}
				counts[p.PID]++
				if p.Tag != 2 {
					t.Fatalf("tick %d ran %s (tag %d), want a server", i, p.Name, p.Tag)
				}
			}
			// Least-runtime-first alternates between the two servers.
			if counts[srv1.PID] == 0 || counts[srv2.PID] == 0 {
				t.Fatalf("servers not shared fairly: %v", counts)
			}
			diff := counts[srv1.PID] - counts[srv2.PID]
			if diff < -1 || diff > 1 {
				t.Fatalf("unfair split: %v", counts)
			}
		})
	}
}

func TestSchedGraftDeclinesWithoutServers(t *testing.T) {
	g, err := tech.Load(tech.CompiledUnsafe, SchedPolicy, mem.New(SCMemSize), tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := kernel.NewScheduler(time.Millisecond, &vclock.Clock{})
	a := s.Spawn("a", 1)
	b := s.Spawn("b", 1)
	s.SetPolicy(NewGraftSchedPolicy(g))
	// No tag-2 processes: the graft declines, round-robin rules.
	p1, _ := s.Tick()
	p2, _ := s.Tick()
	if p1.PID != a.PID || p2.PID != b.PID {
		t.Fatalf("fallback order wrong: %d then %d", p1.PID, p2.PID)
	}
	if st := s.Stats(); st.PolicyOverrides != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSchedGraftMatchesOracleRandomized(t *testing.T) {
	g, err := tech.Load(tech.Bytecode, SchedPolicy, mem.New(SCMemSize), tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pol := NewGraftSchedPolicy(g)
	oracle := func(run []*kernel.Proc) int {
		best, bestrt := -1, int64(1)<<62
		for i, p := range run {
			if p.Tag == 2 && p.Runtime.Microseconds() < bestrt {
				best, bestrt = i, p.Runtime.Microseconds()
			}
		}
		return best
	}
	rng := workload.NewRNG(17)
	for trial := 0; trial < 300; trial++ {
		n := int(rng.Uint32n(20)) + 1
		run := make([]*kernel.Proc, n)
		for i := range run {
			run[i] = &kernel.Proc{
				PID:     i + 1,
				Tag:     rng.Uint32n(3),
				Runtime: time.Duration(rng.Uint32n(1e6)) * time.Microsecond,
			}
		}
		got, err := pol.PickNext(run)
		if err != nil {
			t.Fatal(err)
		}
		if want := oracle(run); got != want {
			t.Fatalf("trial %d: graft=%d oracle=%d", trial, got, want)
		}
	}
}

func TestACLGraftMatchesOracleAcrossTechnologies(t *testing.T) {
	rules := []ACLEntry{
		{UID: 100, FileID: 1, Perms: PermRead | PermWrite},
		{UID: 100, FileID: ACLWildcard, Perms: PermRead},
		{UID: ACLWildcard, FileID: 2, Perms: PermExec},
		{UID: 200, FileID: 3, Perms: 0}, // explicit deny
	}
	queries := []struct {
		uid, file, op uint32
		want          bool
	}{
		{100, 1, PermWrite, true},
		{100, 1, PermExec, false},
		{100, 9, PermRead, true}, // wildcard file rule
		{100, 9, PermWrite, false},
		{300, 2, PermExec, true}, // wildcard uid rule
		{300, 2, PermRead, false},
		{200, 3, PermRead, false}, // explicit deny beats nothing
		{999, 999, PermRead, false},
	}
	for _, id := range hookTechs {
		id := id
		t.Run(string(id), func(t *testing.T) {
			g, err := tech.Load(id, ACL, mem.New(ACLMemSize), tech.Options{})
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := NewACLTable(g)
			if err != nil {
				t.Fatal(err)
			}
			tbl.Set(rules)
			for _, q := range queries {
				got, err := tbl.Check(q.uid, q.file, q.op)
				if err != nil {
					t.Fatal(err)
				}
				if got != q.want {
					t.Errorf("check(%d,%d,%d) = %v, want %v", q.uid, q.file, q.op, got, q.want)
				}
				if ref := tbl.ReferenceCheck(q.uid, q.file, q.op); ref != q.want {
					t.Errorf("oracle disagrees with table: check(%d,%d,%d) ref=%v", q.uid, q.file, q.op, ref)
				}
			}
		})
	}
}

func TestACLGraftRandomizedAgainstOracle(t *testing.T) {
	g, err := tech.Load(tech.NativeUnsafe, ACL, mem.New(ACLMemSize), tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := NewACLTable(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(23)
	for trial := 0; trial < 100; trial++ {
		n := int(rng.Uint32n(20))
		rules := make([]ACLEntry, n)
		for i := range rules {
			uid := rng.Uint32n(5)
			file := rng.Uint32n(5)
			if rng.Uint32n(4) == 0 {
				uid = ACLWildcard
			}
			if rng.Uint32n(4) == 0 {
				file = ACLWildcard
			}
			rules[i] = ACLEntry{UID: uid, FileID: file, Perms: rng.Uint32n(8)}
		}
		tbl.Set(rules)
		for q := 0; q < 50; q++ {
			uid, file, op := rng.Uint32n(6), rng.Uint32n(6), uint32(1)<<rng.Uint32n(3)
			got, err := tbl.Check(uid, file, op)
			if err != nil {
				t.Fatal(err)
			}
			if want := tbl.ReferenceCheck(uid, file, op); got != want {
				t.Fatalf("trial %d: check(%d,%d,%d) = %v, oracle %v (rules %v)",
					trial, uid, file, op, got, want, rules)
			}
		}
	}
}

func TestACLEmptyTableDeniesEverything(t *testing.T) {
	g, err := tech.Load(tech.CompiledSafe, ACL, mem.New(ACLMemSize), tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := NewACLTable(g)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := tbl.Check(1, 1, PermRead)
	if err != nil || ok {
		t.Fatalf("empty table allowed access: %v %v", ok, err)
	}
}

func TestACLRejectsSmallMemory(t *testing.T) {
	g, err := tech.Load(tech.CompiledUnsafe, ACL, mem.New(1<<12), tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewACLTable(g); err == nil {
		t.Fatal("undersized memory accepted")
	}
}
