package grafts

import (
	"testing"

	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

// TestEveryGraftLoadsUnderEveryCarryingTechnology is the living inventory:
// each graft source must load and answer one invocation under every
// technology class that can carry it, and must be *refused* (not
// mishandled) by classes that cannot. Adding a graft or a technology
// without updating its representations fails here first.
func TestEveryGraftLoadsUnderEveryCarryingTechnology(t *testing.T) {
	cases := []struct {
		src     tech.Source
		memSize uint32
		// prep runs after load, before the smoke invocation.
		prep  func(t *testing.T, g tech.Graft)
		entry string
		args  []uint32
	}{
		{
			src: PageEvict, memSize: PEMemSize,
			prep: func(t *testing.T, g tech.Graft) {
				// Empty hot list and empty LRU: evict(0) means an empty
				// chain; the graft falls through to ld32(0)... avoid NIL
				// page: hand it a one-node chain instead.
				m := g.Memory()
				m.St32U(PEHotHeadAddr, 0)
				m.St32U(PELRUNodeBase, 1234) // page
				m.St32U(PELRUNodeBase+4, 0)  // end of chain
			},
			entry: "evict", args: []uint32{PELRUNodeBase},
		},
		{
			src: MD5, memSize: MDMemSize,
			prep: func(t *testing.T, g tech.Graft) {
				SetupMD5Memory(g.Memory())
				if _, err := g.Invoke("md5_init"); err != nil {
					t.Fatal(err)
				}
			},
			entry: "md5_update", args: []uint32{MDBufAddr, 64},
		},
		{
			src: LDMap, memSize: LDMemSize,
			prep: func(t *testing.T, g tech.Graft) {
				if _, err := NewGraftMapper(g, 1024); err != nil {
					t.Fatal(err)
				}
			},
			entry: "ld_write", args: []uint32{7},
		},
		{
			src: PacketFilter, memSize: PFMemSize,
			prep: func(t *testing.T, g tech.Graft) {
				ConfigurePacketFilter(g.Memory(), 80)
			},
			entry: "filter", args: []uint32{10},
		},
		{
			src: SchedPolicy, memSize: SCMemSize,
			prep: func(t *testing.T, g tech.Graft) {
				g.Memory().St32U(SCCountAddr, 0)
			},
			entry: "pick", args: []uint32{0},
		},
		{
			src: ACL, memSize: ACLMemSize,
			prep: func(t *testing.T, g tech.Graft) {
				if _, err := NewACLTable(g); err != nil {
					t.Fatal(err)
				}
			},
			entry: "check", args: []uint32{1, 2, PermRead},
		},
		{
			src: CacheHook, memSize: BCMemSize,
			prep: func(t *testing.T, g tech.Graft) {
				m := g.Memory()
				m.St32U(BCCountAddr, 0)
				m.St32U(BCPinCountAddr, 0)
			},
			entry: "pickvictim", args: []uint32{0},
		},
	}

	for _, c := range cases {
		c := c
		t.Run(c.src.Name, func(t *testing.T) {
			for _, id := range tech.All {
				id := id
				t.Run(string(id), func(t *testing.T) {
					carries := true
					if id == tech.Script && c.src.Tcl == "" {
						carries = false
					}
					if tech.NeedsCompiledImpl(id) && c.src.Compiled == nil {
						carries = false
					}
					if id == tech.Domain && len(c.src.Hipec) == 0 {
						carries = false
					}
					g, err := tech.Load(id, c.src, mem.New(c.memSize), tech.Options{})
					if !carries {
						if err == nil {
							t.Fatalf("%s should refuse %s (missing representation)", id, c.src.Name)
						}
						return
					}
					if err != nil {
						t.Fatalf("load: %v", err)
					}
					if c.prep != nil {
						c.prep(t, g)
					}
					if _, err := g.Invoke(c.entry, c.args...); err != nil {
						t.Fatalf("smoke invocation: %v", err)
					}
				})
			}
		})
	}
}
