package grafts

import (
	"graftlab/internal/kernel"
	"graftlab/internal/mem"
	"graftlab/internal/vclock"
	"testing"
)

func setupEvict(b *testing.B) ([]byte, uint32) {
	m := mem.New(PEMemSize)
	clock := &vclock.Clock{}
	p, _ := kernel.NewPager(kernel.PagerConfig{Frames: 256, Mem: m, NodeBase: PELRUNodeBase}, clock)
	for i := 0; i < 256; i++ {
		p.Access(kernel.PageID(100 + i))
	}
	hot := NewHotList(m)
	pages := make([]kernel.PageID, 64)
	for i := range pages {
		pages[i] = kernel.PageID(500000 + i)
	}
	hot.Set(pages)
	return m.Data, p.HeadAddr()
}

func BenchmarkEvictRaw(b *testing.B) {
	d, head := setupEvict(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = evictRaw(d, head)
	}
}
func BenchmarkEvictChk(b *testing.B) {
	d, head := setupEvict(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = evictChk(d, head)
	}
}
func BenchmarkEvictNil(b *testing.B) {
	d, head := setupEvict(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = evictNil(d, head)
	}
}
func BenchmarkEvictSFIFull(b *testing.B) {
	d, head := setupEvict(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = evictSFIFull(d, head, uint32(PEMemSize-1))
	}
}
