package grafts

import (
	"fmt"

	"graftlab/internal/kernel"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

// Graft-memory layout for the scheduler policy graft.
const (
	// SCCountAddr holds the number of runnable processes.
	SCCountAddr = 0x1000
	// SCBase is the runnable array: per process {pid, tag, runtime-µs},
	// 12 bytes each, in run-queue order.
	SCBase = 0x1010
	// SCStride is the per-process record size.
	SCStride = 12
	// SCMaxProcs bounds the marshaled run queue.
	SCMaxProcs = 256
	// SCMemSize sizes the graft memory.
	SCMemSize = 1 << 16
	// SCDecline is returned by the graft to accept the kernel's default.
	SCDecline = 0xFFFFFFFF
)

// SchedPolicy is the second Prioritization graft: §3.1's client-server
// scheduling example ("a client-server application may not want the
// server to be scheduled unless there is an outstanding client request,
// in which case it should be scheduled ahead of any client"). Entry:
//
//	pick(count) -> index or SCDecline
//
// The policy prefers the server-tagged process (tag == 2) with the least
// accumulated runtime — server priority with round-robin fairness among
// servers — and declines when no server is runnable.
var SchedPolicy = tech.Source{
	Name: "schedpolicy",
	GEL: `
func pick(count) {
	var best = 0xFFFFFFFF;
	var bestrt = 0xFFFFFFFF;
	var i = 0;
	while (i < count) {
		var base = 0x1010 + i * 12;
		if (ld32(base + 4) == 2) {
			var rt = ld32(base + 8);
			if (rt < bestrt) {
				bestrt = rt;
				best = i;
			}
		}
		i = i + 1;
	}
	return best;
}
`,
	Tcl: `
proc pick {count} {
	set best 0xFFFFFFFF
	set bestrt 0xFFFFFFFF
	set i 0
	while {$i < $count} {
		set base [expr {0x1010 + $i * 12}]
		if {[ld32 [expr {$base + 4}]] == 2} {
			set rt [ld32 [expr {$base + 8}]]
			if {$rt < $bestrt} {
				set bestrt $rt
				set best $i
			}
		}
		incr i
	}
	return $best
}
`,
	Compiled: newCompiledSchedPolicy,
	Hipec: map[string]string{
		"pick": `
	; r0 = runnable count; records of {pid, tag, runtime-us} at 0x1010
		movi r1, 0           ; index
		movi r2, 0xFFFFFFFF  ; best index (decline)
		movi r3, 0xFFFFFFFF  ; best runtime
		movi r4, 0x1010      ; record pointer
		movi r8, 2           ; server tag
	loop:
		jge  r1, r0, done
		ldw  r5, [r4+4]      ; tag
		jne  r5, r8, next
		ldw  r6, [r4+8]      ; runtime
		jge  r6, r3, next
		mov  r3, r6
		mov  r2, r1
	next:
		addi r1, r1, 1
		addi r4, r4, 12
		jmp  loop
	done:
		ret  r2
`,
	},
}

func newCompiledSchedPolicy(cfg mem.Config, m *mem.Memory) (tech.Graft, error) {
	g := NewCompiledGraft(m)
	d := m.Data
	mask := m.Mask()
	var pick func(count uint32) uint32
	switch {
	case cfg.Policy == mem.PolicyChecked && cfg.NilCheck:
		pick = func(n uint32) uint32 { return scPick(d, n, ld32nil) }
	case cfg.Policy == mem.PolicyChecked:
		pick = func(n uint32) uint32 { return scPick(d, n, ld32chk) }
	case cfg.Policy == mem.PolicySandbox && cfg.ReadProtect:
		pick = func(n uint32) uint32 {
			return scPick(d, n, func(d []byte, a uint32) uint32 { return ld32sfi(d, a, mask) })
		}
	default:
		pick = func(n uint32) uint32 { return scPick(d, n, le32) }
	}
	g.Register("pick", 1, func(a []uint32) uint32 { return pick(a[0]) })
	return g, nil
}

func scPick(d []byte, count uint32, ld func([]byte, uint32) uint32) uint32 {
	best := uint32(SCDecline)
	bestrt := uint32(0xFFFFFFFF)
	for i := uint32(0); i < count; i++ {
		base := uint32(SCBase) + i*SCStride
		if ld(d, base+4) == 2 {
			if rt := ld(d, base+8); rt < bestrt {
				bestrt = rt
				best = i
			}
		}
	}
	return best
}

// GraftSchedPolicy adapts a loaded scheduler graft to the kernel hook:
// it marshals the run queue into graft memory before each decision.
type GraftSchedPolicy struct {
	g    tech.Graft
	m    *mem.Memory
	call func(args []uint32) (uint32, error)
	args [1]uint32
}

// NewGraftSchedPolicy wraps g (which must export "pick").
func NewGraftSchedPolicy(g tech.Graft) *GraftSchedPolicy {
	return &GraftSchedPolicy{g: g, m: g.Memory(), call: tech.ResolveDirect(g, "pick")}
}

// PickNext implements kernel.SchedPolicy.
func (p *GraftSchedPolicy) PickNext(runnable []*kernel.Proc) (int, error) {
	n := len(runnable)
	if n > SCMaxProcs {
		n = SCMaxProcs
	}
	p.m.St32U(SCCountAddr, uint32(n))
	for i := 0; i < n; i++ {
		base := uint32(SCBase) + uint32(i)*SCStride
		pr := runnable[i]
		p.m.St32U(base, uint32(pr.PID))
		p.m.St32U(base+4, pr.Tag)
		p.m.St32U(base+8, uint32(pr.Runtime.Microseconds()))
	}
	p.args[0] = uint32(n)
	v, err := p.call(p.args[:])
	if err != nil {
		return -1, err
	}
	if v == SCDecline {
		return -1, nil
	}
	if v >= uint32(n) {
		return -1, fmt.Errorf("grafts: scheduler graft picked %d of %d", v, n)
	}
	return int(v), nil
}

var _ kernel.SchedPolicy = (*GraftSchedPolicy)(nil)
