package grafts

import (
	"encoding/binary"

	"graftlab/internal/mem"
	"graftlab/internal/netsim"
	"graftlab/internal/tech"
)

// Graft-memory layout for the packet filter.
const (
	// PFPortAddr holds the destination port the endpoint listens on
	// (host-configured; this is how one filter source serves every
	// endpoint).
	PFPortAddr = 0x1000
	// PFBufAddr is where the demultiplexer marshals each frame.
	// Under the batch protocol it doubles as slot 0, so the single-frame
	// layout is a batch of one.
	PFBufAddr = 0x2000
	// PFMemSize sizes the filter's memory (frames up to ~56 KB).
	PFMemSize = 1 << 16

	// Batch-protocol layout: the host marshals up to PFMaxBatch frames
	// into PFSlotSize-byte slots starting at PFBufAddr, their lengths
	// into a u32 table at PFLenBase, and pre-fills the u32 verdict table
	// at PFVerdictBase with PFVerdictNone. filter_batch(n) writes a 0/1
	// verdict per frame (where its class can store at all) and returns
	// the accept bitmask — bit i set means frame i accepted. The mask is
	// the one channel every class shares: the Domain (HiPEC) language has
	// loads but no stores, so it can only answer through the return
	// value, which caps the per-crossing batch at 32 frames.
	PFLenBase     = 0x1400
	PFVerdictBase = 0x1800
	PFSlotSize    = 512
	PFMaxBatch    = 32
	// PFVerdictNone is the host-written sentinel: after a mid-batch trap,
	// the first slot still holding it is the in-flight frame.
	PFVerdictNone = 0xFFFFFFFF
)

// PacketFilter is the classic in-kernel extension the paper's related
// work opens with (§2): accept IPv4 UDP frames addressed to the
// endpoint's port. Entry point:
//
//	filter(frameLen) -> 0/1
//
// Multi-byte header fields are network order, so the filter assembles
// them from byte loads exactly as a BPF program would.
var PacketFilter = tech.Source{
	Name: "pktfilter",
	GEL: `
func filter(len) {
	if (len < 42) { return 0; }
	// Ethernet type must be IPv4 (0x0800).
	if (ld8(0x2000 + 12) * 256 + ld8(0x2000 + 13) != 0x0800) { return 0; }
	// IP protocol must be UDP (17).
	if (ld8(0x2000 + 23) != 17) { return 0; }
	// Destination port must match the configured port.
	if (ld8(0x2000 + 36) * 256 + ld8(0x2000 + 37) != ld32(0x1000)) { return 0; }
	return 1;
}

func filter_batch(n) {
	var port = ld32(0x1000);
	var mask = 0;
	var bit = 1;
	var base = 0x2000;
	var lena = 0x1400;
	var va = 0x1800;
	var end = 0;
	var ok = 0;
	if (n > 32) { n = 32; }
	end = 0x1400 + n * 4;
	while (lena < end) {
		ok = 1;
		if (ld32(lena) < 42) { ok = 0; }
		else if (ld8(base + 12) * 256 + ld8(base + 13) != 0x0800) { ok = 0; }
		else if (ld8(base + 23) != 17) { ok = 0; }
		else if (ld8(base + 36) * 256 + ld8(base + 37) != port) { ok = 0; }
		st32(va, ok);
		if (ok == 1) { mask = mask | bit; }
		bit = bit << 1;
		base = base + 512;
		lena = lena + 4;
		va = va + 4;
	}
	return mask;
}
`,
	Tcl: `
proc filter {len} {
	if {$len < 42} { return 0 }
	if {[ld8 [expr {0x2000 + 12}]] * 256 + [ld8 [expr {0x2000 + 13}]] != 0x0800} { return 0 }
	if {[ld8 [expr {0x2000 + 23}]] != 17} { return 0 }
	if {[ld8 [expr {0x2000 + 36}]] * 256 + [ld8 [expr {0x2000 + 37}]] != [ld32 0x1000]} { return 0 }
	return 1
}

proc filter_batch {n} {
	if {$n > 32} { set n 32 }
	set port [ld32 0x1000]
	set mask 0
	set bit 1
	set base 0x2000
	set lena 0x1400
	set va 0x1800
	set end [expr {0x1400 + $n * 4}]
	while {$lena < $end} {
		set ok 1
		if {[ld32 $lena] < 42} {
			set ok 0
		} elseif {[ld8 [expr {$base + 12}]] * 256 + [ld8 [expr {$base + 13}]] != 0x0800} {
			set ok 0
		} elseif {[ld8 [expr {$base + 23}]] != 17} {
			set ok 0
		} elseif {[ld8 [expr {$base + 36}]] * 256 + [ld8 [expr {$base + 37}]] != $port} {
			set ok 0
		}
		st32 $va $ok
		if {$ok == 1} { set mask [expr {$mask | $bit}] }
		set bit [expr {$bit << 1}]
		set base [expr {$base + 512}]
		set lena [expr {$lena + 4}]
		set va [expr {$va + 4}]
	}
	return $mask
}
`,
	Compiled: newCompiledPacketFilter,
	// The BPF-style rendering: this is the domain the §2 filter
	// languages were invented for, ~20 instructions for the whole
	// classifier.
	Hipec: map[string]string{
		"filter": `
	; r0 = frame length; frame at 0x2000; port config at 0x1000
		movi r6, 42
		jlt  r0, r6, reject
		movi r5, 0x2000
		ldb  r1, [r5+12]      ; ethertype high byte must be 0x08
		movi r2, 8
		jne  r1, r2, reject
		ldb  r1, [r5+13]      ; ethertype low byte must be 0x00
		movi r2, 0
		jne  r1, r2, reject
		ldb  r1, [r5+23]      ; IP protocol must be UDP (17)
		movi r2, 17
		jne  r1, r2, reject
		ldb  r1, [r5+36]      ; destination port, network order
		movi r3, 8
		shl  r1, r1, r3
		ldb  r2, [r5+37]
		or   r1, r1, r2
		movi r4, 0x1000
		ldw  r4, [r4+0]
		jne  r1, r4, reject
		movi r1, 1
		ret  r1
	reject:
		movi r1, 0
		ret  r1
`,
		// The batch rendering answers through the return mask alone: the
		// domain ISA has loads but no stores, so the verdict table stays
		// host-written sentinels and the demultiplexer falls back to
		// single-frame refiltering if a batch invocation traps.
		"filter_batch": `
	; r0 = batch size; slots of 512 bytes at 0x2000, u32 lengths at
	; 0x1400, port config at 0x1000. Returns the accept bitmask.
		movi r6, 32
		jlt  r0, r6, clamped
		mov  r0, r6
	clamped:
		movi r7, 0x1000
		ldw  r7, [r7+0]       ; port
		movi r1, 0x1400       ; length cursor
		movi r6, 4
		mul  r0, r0, r6
		addi r0, r0, 0x1400   ; r0 = end of length table
		movi r2, 0            ; mask
		movi r8, 1            ; bit
		movi r3, 0x2000       ; slot cursor
	loop:
		jge  r1, r0, done
		ldw  r4, [r1+0]       ; frame length
		movi r5, 42
		jlt  r4, r5, next
		ldb  r4, [r3+12]      ; ethertype must be 0x0800
		movi r5, 8
		jne  r4, r5, next
		ldb  r4, [r3+13]
		movi r5, 0
		jne  r4, r5, next
		ldb  r4, [r3+23]      ; IP protocol must be UDP (17)
		movi r5, 17
		jne  r4, r5, next
		ldb  r4, [r3+36]      ; destination port, network order
		movi r5, 8
		shl  r4, r4, r5
		ldb  r5, [r3+37]
		or   r4, r4, r5
		jne  r4, r7, next
		or   r2, r2, r8
	next:
		movi r5, 1
		shl  r8, r8, r5
		addi r1, r1, 4
		addi r3, r3, 512
		jmp  loop
	done:
		ret  r2
`,
	},
}

// ConfigurePacketFilter writes the endpoint's port into graft memory.
func ConfigurePacketFilter(m *mem.Memory, port uint16) {
	m.St32U(PFPortAddr, uint32(port))
}

// PacketFilterBatchConfig returns the netsim batch-endpoint layout for
// the packet filter under class id. The Domain class is mask-only:
// HiPEC has loads but no stores, so it cannot commit verdicts and the
// demultiplexer falls back to single-frame refiltering after a trap.
func PacketFilterBatchConfig(id tech.ID) netsim.BatchConfig {
	return netsim.BatchConfig{
		Entry:       "filter_batch",
		SingleEntry: "filter",
		BufAddr:     PFBufAddr,
		SlotSize:    PFSlotSize,
		LenBase:     PFLenBase,
		HasVerdicts: id != tech.Domain,
		VerdictBase: PFVerdictBase,
		VerdictNone: PFVerdictNone,
		MaxBatch:    PFMaxBatch,
	}
}

// ReferencePacketFilter is the hand-written host filter used as the
// correctness oracle.
func ReferencePacketFilter(port uint16) func(p netsim.Packet) bool {
	return func(p netsim.Packet) bool {
		return p.IsUDPv4() && p.DstPort() == port
	}
}

// newCompiledPacketFilter is the compiled-class implementation, one
// variant per policy. The batch entry walks the slot table with the same
// per-frame classifier and the policy's own length loads and verdict
// stores — the write/jump-only SFI variant masks its verdict stores even
// though its loads are raw, exactly like the modeled technology.
func newCompiledPacketFilter(cfg mem.Config, m *mem.Memory) (tech.Graft, error) {
	g := NewCompiledGraft(m)
	d := m.Data
	mask := m.Mask()

	var filter func(base, frameLen uint32) uint32
	var ld32 func(a uint32) uint32
	var st32 func(a, v uint32)
	switch {
	case cfg.Policy == mem.PolicyChecked && cfg.NilCheck:
		filter = func(b, n uint32) uint32 { return pfFilterNil(d, b, n) }
		ld32 = func(a uint32) uint32 { return ld32nil(d, a) }
		st32 = func(a, v uint32) { st32nil(d, a, v) }
	case cfg.Policy == mem.PolicyChecked:
		filter = func(b, n uint32) uint32 { return pfFilterChk(d, b, n) }
		ld32 = func(a uint32) uint32 { return ld32chk(d, a) }
		st32 = func(a, v uint32) { st32chk(d, a, v) }
	case cfg.Policy == mem.PolicySandbox && cfg.ReadProtect:
		filter = func(b, n uint32) uint32 { return pfFilterSFIFull(d, b, n, mask) }
		ld32 = func(a uint32) uint32 { return ld32sfi(d, a, mask) }
		st32 = func(a, v uint32) { st32sfi(d, a, v, mask) }
	case cfg.Policy == mem.PolicySandbox:
		filter = func(b, n uint32) uint32 { return pfFilterRaw(d, b, n) }
		ld32 = func(a uint32) uint32 { return le32(d, a) }
		st32 = func(a, v uint32) { st32sfi(d, a, v, mask) }
	default: // unsafe: raw accesses both ways
		filter = func(b, n uint32) uint32 { return pfFilterRaw(d, b, n) }
		ld32 = func(a uint32) uint32 { return le32(d, a) }
		st32 = func(a, v uint32) { se32(d, a, v) }
	}
	g.Register("filter", 1, func(a []uint32) uint32 { return filter(PFBufAddr, a[0]) })
	g.Register("filter_batch", 1, func(a []uint32) uint32 {
		n := a[0]
		if n > PFMaxBatch {
			n = PFMaxBatch
		}
		var accept uint32
		for i := uint32(0); i < n; i++ {
			ok := filter(PFBufAddr+i*PFSlotSize, ld32(PFLenBase+4*i))
			st32(PFVerdictBase+4*i, ok)
			accept |= ok << i
		}
		return accept
	})
	return g, nil
}

func pfFilterRaw(d []byte, base, n uint32) uint32 {
	if n < netsim.MinFrameSize {
		return 0
	}
	if uint32(d[base+netsim.OffEthType])<<8|uint32(d[base+netsim.OffEthType+1]) != netsim.EthTypeIPv4 {
		return 0
	}
	if d[base+netsim.OffIPProto] != netsim.ProtoUDP {
		return 0
	}
	port := uint32(d[base+netsim.OffDstPort])<<8 | uint32(d[base+netsim.OffDstPort+1])
	if port != binary.LittleEndian.Uint32(d[PFPortAddr:]) {
		return 0
	}
	return 1
}

func pfFilterChk(d []byte, base, n uint32) uint32 {
	if n < netsim.MinFrameSize {
		return 0
	}
	if ld8chk(d, base+netsim.OffEthType)<<8|ld8chk(d, base+netsim.OffEthType+1) != netsim.EthTypeIPv4 {
		return 0
	}
	if ld8chk(d, base+netsim.OffIPProto) != netsim.ProtoUDP {
		return 0
	}
	port := ld8chk(d, base+netsim.OffDstPort)<<8 | ld8chk(d, base+netsim.OffDstPort+1)
	if port != ld32chk(d, PFPortAddr) {
		return 0
	}
	return 1
}

func pfFilterNil(d []byte, base, n uint32) uint32 {
	if n < netsim.MinFrameSize {
		return 0
	}
	if ld8nil(d, base+netsim.OffEthType)<<8|ld8nil(d, base+netsim.OffEthType+1) != netsim.EthTypeIPv4 {
		return 0
	}
	if ld8nil(d, base+netsim.OffIPProto) != netsim.ProtoUDP {
		return 0
	}
	port := ld8nil(d, base+netsim.OffDstPort)<<8 | ld8nil(d, base+netsim.OffDstPort+1)
	if port != ld32nil(d, PFPortAddr) {
		return 0
	}
	return 1
}

func pfFilterSFIFull(d []byte, base, n, mask uint32) uint32 {
	if n < netsim.MinFrameSize {
		return 0
	}
	ld8m := func(a uint32) uint32 { return uint32(d[a&mask]) }
	if ld8m(base+netsim.OffEthType)<<8|ld8m(base+netsim.OffEthType+1) != netsim.EthTypeIPv4 {
		return 0
	}
	if ld8m(base+netsim.OffIPProto) != netsim.ProtoUDP {
		return 0
	}
	port := ld8m(base+netsim.OffDstPort)<<8 | ld8m(base+netsim.OffDstPort+1)
	if port != ld32sfi(d, PFPortAddr, mask) {
		return 0
	}
	return 1
}
