package grafts

import (
	"encoding/binary"

	"graftlab/internal/mem"
	"graftlab/internal/netsim"
	"graftlab/internal/tech"
)

// Graft-memory layout for the packet filter.
const (
	// PFPortAddr holds the destination port the endpoint listens on
	// (host-configured; this is how one filter source serves every
	// endpoint).
	PFPortAddr = 0x1000
	// PFBufAddr is where the demultiplexer marshals each frame.
	PFBufAddr = 0x2000
	// PFMemSize sizes the filter's memory (frames up to ~56 KB).
	PFMemSize = 1 << 16
)

// PacketFilter is the classic in-kernel extension the paper's related
// work opens with (§2): accept IPv4 UDP frames addressed to the
// endpoint's port. Entry point:
//
//	filter(frameLen) -> 0/1
//
// Multi-byte header fields are network order, so the filter assembles
// them from byte loads exactly as a BPF program would.
var PacketFilter = tech.Source{
	Name: "pktfilter",
	GEL: `
func filter(len) {
	if (len < 42) { return 0; }
	// Ethernet type must be IPv4 (0x0800).
	if (ld8(0x2000 + 12) * 256 + ld8(0x2000 + 13) != 0x0800) { return 0; }
	// IP protocol must be UDP (17).
	if (ld8(0x2000 + 23) != 17) { return 0; }
	// Destination port must match the configured port.
	if (ld8(0x2000 + 36) * 256 + ld8(0x2000 + 37) != ld32(0x1000)) { return 0; }
	return 1;
}
`,
	Tcl: `
proc filter {len} {
	if {$len < 42} { return 0 }
	if {[ld8 [expr {0x2000 + 12}]] * 256 + [ld8 [expr {0x2000 + 13}]] != 0x0800} { return 0 }
	if {[ld8 [expr {0x2000 + 23}]] != 17} { return 0 }
	if {[ld8 [expr {0x2000 + 36}]] * 256 + [ld8 [expr {0x2000 + 37}]] != [ld32 0x1000]} { return 0 }
	return 1
}
`,
	Compiled: newCompiledPacketFilter,
	// The BPF-style rendering: this is the domain the §2 filter
	// languages were invented for, ~20 instructions for the whole
	// classifier.
	Hipec: map[string]string{
		"filter": `
	; r0 = frame length; frame at 0x2000; port config at 0x1000
		movi r6, 42
		jlt  r0, r6, reject
		movi r5, 0x2000
		ldb  r1, [r5+12]      ; ethertype high byte must be 0x08
		movi r2, 8
		jne  r1, r2, reject
		ldb  r1, [r5+13]      ; ethertype low byte must be 0x00
		movi r2, 0
		jne  r1, r2, reject
		ldb  r1, [r5+23]      ; IP protocol must be UDP (17)
		movi r2, 17
		jne  r1, r2, reject
		ldb  r1, [r5+36]      ; destination port, network order
		movi r3, 8
		shl  r1, r1, r3
		ldb  r2, [r5+37]
		or   r1, r1, r2
		movi r4, 0x1000
		ldw  r4, [r4+0]
		jne  r1, r4, reject
		movi r1, 1
		ret  r1
	reject:
		movi r1, 0
		ret  r1
`,
	},
}

// ConfigurePacketFilter writes the endpoint's port into graft memory.
func ConfigurePacketFilter(m *mem.Memory, port uint16) {
	m.St32U(PFPortAddr, uint32(port))
}

// ReferencePacketFilter is the hand-written host filter used as the
// correctness oracle.
func ReferencePacketFilter(port uint16) func(p netsim.Packet) bool {
	return func(p netsim.Packet) bool {
		return p.IsUDPv4() && p.DstPort() == port
	}
}

// newCompiledPacketFilter is the compiled-class implementation, one
// variant per policy.
func newCompiledPacketFilter(cfg mem.Config, m *mem.Memory) (tech.Graft, error) {
	g := NewCompiledGraft(m)
	d := m.Data
	mask := m.Mask()

	var filter func(frameLen uint32) uint32
	switch {
	case cfg.Policy == mem.PolicyChecked && cfg.NilCheck:
		filter = func(n uint32) uint32 { return pfFilterNil(d, n) }
	case cfg.Policy == mem.PolicyChecked:
		filter = func(n uint32) uint32 { return pfFilterChk(d, n) }
	case cfg.Policy == mem.PolicySandbox && cfg.ReadProtect:
		filter = func(n uint32) uint32 { return pfFilterSFIFull(d, n, mask) }
	default: // unsafe and write/jump-only SFI: a pure-load filter
		filter = func(n uint32) uint32 { return pfFilterRaw(d, n) }
	}
	g.Register("filter", 1, func(a []uint32) uint32 { return filter(a[0]) })
	return g, nil
}

func pfFilterRaw(d []byte, n uint32) uint32 {
	if n < netsim.MinFrameSize {
		return 0
	}
	if uint32(d[PFBufAddr+netsim.OffEthType])<<8|uint32(d[PFBufAddr+netsim.OffEthType+1]) != netsim.EthTypeIPv4 {
		return 0
	}
	if d[PFBufAddr+netsim.OffIPProto] != netsim.ProtoUDP {
		return 0
	}
	port := uint32(d[PFBufAddr+netsim.OffDstPort])<<8 | uint32(d[PFBufAddr+netsim.OffDstPort+1])
	if port != binary.LittleEndian.Uint32(d[PFPortAddr:]) {
		return 0
	}
	return 1
}

func pfFilterChk(d []byte, n uint32) uint32 {
	if n < netsim.MinFrameSize {
		return 0
	}
	if ld8chk(d, PFBufAddr+netsim.OffEthType)<<8|ld8chk(d, PFBufAddr+netsim.OffEthType+1) != netsim.EthTypeIPv4 {
		return 0
	}
	if ld8chk(d, PFBufAddr+netsim.OffIPProto) != netsim.ProtoUDP {
		return 0
	}
	port := ld8chk(d, PFBufAddr+netsim.OffDstPort)<<8 | ld8chk(d, PFBufAddr+netsim.OffDstPort+1)
	if port != ld32chk(d, PFPortAddr) {
		return 0
	}
	return 1
}

func pfFilterNil(d []byte, n uint32) uint32 {
	if n < netsim.MinFrameSize {
		return 0
	}
	if ld8nil(d, PFBufAddr+netsim.OffEthType)<<8|ld8nil(d, PFBufAddr+netsim.OffEthType+1) != netsim.EthTypeIPv4 {
		return 0
	}
	if ld8nil(d, PFBufAddr+netsim.OffIPProto) != netsim.ProtoUDP {
		return 0
	}
	port := ld8nil(d, PFBufAddr+netsim.OffDstPort)<<8 | ld8nil(d, PFBufAddr+netsim.OffDstPort+1)
	if port != ld32nil(d, PFPortAddr) {
		return 0
	}
	return 1
}

func pfFilterSFIFull(d []byte, n, mask uint32) uint32 {
	if n < netsim.MinFrameSize {
		return 0
	}
	ld8m := func(a uint32) uint32 { return uint32(d[a&mask]) }
	if ld8m(PFBufAddr+netsim.OffEthType)<<8|ld8m(PFBufAddr+netsim.OffEthType+1) != netsim.EthTypeIPv4 {
		return 0
	}
	if ld8m(PFBufAddr+netsim.OffIPProto) != netsim.ProtoUDP {
		return 0
	}
	port := ld8m(PFBufAddr+netsim.OffDstPort)<<8 | ld8m(PFBufAddr+netsim.OffDstPort+1)
	if port != ld32sfi(d, PFPortAddr, mask) {
		return 0
	}
	return 1
}
