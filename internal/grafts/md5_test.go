package grafts

import (
	"bytes"
	"testing"

	"graftlab/internal/kernel"
	"graftlab/internal/md5x"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

func loadMD5(t *testing.T, id tech.ID) *MD5Graft {
	t.Helper()
	g, err := tech.Load(id, MD5, mem.New(MDMemSize), tech.Options{})
	if err != nil {
		t.Fatalf("load md5 under %s: %v", id, err)
	}
	h, err := NewMD5Graft(g)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// md5TechsFast are the technologies fast enough to hash kilobytes in a
// unit test; the script class is exercised separately on small inputs.
var md5TechsFast = []tech.ID{
	tech.CompiledUnsafe, tech.CompiledSafe, tech.CompiledSafeNil,
	tech.CompiledSFI, tech.CompiledSFIFull,
	tech.NativeUnsafe, tech.NativeSafe, tech.NativeSafeNil,
	tech.SFI, tech.SFIFull, tech.Bytecode,
}

func TestMD5GraftRFCVectors(t *testing.T) {
	vectors := []string{
		"",
		"a",
		"abc",
		"message digest",
		"abcdefghijklmnopqrstuvwxyz",
		"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
		"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
	}
	for _, id := range md5TechsFast {
		h := loadMD5(t, id)
		for _, v := range vectors {
			if err := h.Reset(); err != nil {
				t.Fatal(err)
			}
			if _, err := h.Write([]byte(v)); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			got, err := h.Sum()
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if want := md5x.Of([]byte(v)); got != want {
				t.Errorf("%s: MD5(%q) = %x, want %x", id, v, got, want)
			}
		}
	}
}

func TestMD5GraftScriptClass(t *testing.T) {
	h := loadMD5(t, tech.Script)
	for _, v := range []string{"", "abc", "The quick brown fox jumps over the lazy dog"} {
		if err := h.Reset(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write([]byte(v)); err != nil {
			t.Fatal(err)
		}
		got, err := h.Sum()
		if err != nil {
			t.Fatal(err)
		}
		if want := md5x.Of([]byte(v)); got != want {
			t.Errorf("script: MD5(%q) = %x, want %x", v, got, want)
		}
	}
}

func TestMD5GraftStreamingChunks(t *testing.T) {
	data := make([]byte, 3000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	want := md5x.Of(data)
	h := loadMD5(t, tech.NativeUnsafe)
	for _, chunk := range []int{1, 13, 63, 64, 65, 700} {
		if err := h.Reset(); err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			if _, err := h.Write(data[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		got, err := h.Sum()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("chunk %d: %x != %x", chunk, got, want)
		}
	}
}

func TestMD5GraftLargeInput(t *testing.T) {
	n := 256 << 10
	if testing.Short() {
		n = 16 << 10
	}
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i>>3 ^ i)
	}
	want := md5x.Of(data)
	for _, id := range md5TechsFast {
		h := loadMD5(t, id)
		if _, err := h.Write(data); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		got, err := h.Sum()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if got != want {
			t.Errorf("%s: digest mismatch on %d bytes", id, n)
		}
	}
}

func TestMD5NotExpressibleInDomainLanguage(t *testing.T) {
	// §2's trade: HiPEC-class languages "would have to be augmented if
	// [they] were to be used for other applications." MD5 needs stores
	// and 64-bit-of-state loops; the domain class cannot carry it, and
	// the registry says so rather than pretending.
	_, err := tech.Load(tech.Domain, MD5, mem.New(MDMemSize), tech.Options{})
	if err == nil {
		t.Fatal("the domain language should not be able to carry MD5")
	}
}

func TestMD5GraftRejectsSmallMemory(t *testing.T) {
	g, err := tech.Load(tech.NativeUnsafe, MD5, mem.New(4096), tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMD5Graft(g); err == nil {
		t.Fatal("expected error for undersized memory")
	}
}

func TestMD5FilterInChain(t *testing.T) {
	h := loadMD5(t, tech.NativeUnsafe)
	f := NewMD5Filter(h)
	var sunk bytes.Buffer
	chain := kernel.NewChain(func(p []byte) error {
		sunk.Write(p)
		return nil
	}, f)

	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i)
	}
	for off := 0; off < len(data); off += 512 {
		end := off + 512
		if end > len(data) {
			end = len(data)
		}
		if _, err := chain.Write(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := chain.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sunk.Bytes(), data) {
		t.Error("MD5 filter altered the stream")
	}
	digest, ok := f.Digest()
	if !ok {
		t.Fatal("digest not latched")
	}
	if want := md5x.Of(data); digest != want {
		t.Errorf("digest = %x, want %x", digest, want)
	}
	if chain.BytesOut() != uint64(len(data)) {
		t.Errorf("BytesOut = %d", chain.BytesOut())
	}
}
