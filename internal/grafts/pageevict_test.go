package grafts

import (
	"testing"

	"graftlab/internal/btree"
	"graftlab/internal/kernel"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/vclock"
	"graftlab/internal/workload"
)

// evictTechs: every technology carries this graft (it is tiny).
var evictTechs = []tech.ID{
	tech.CompiledUnsafe, tech.CompiledSafe, tech.CompiledSafeNil,
	tech.CompiledSFI, tech.CompiledSFIFull,
	tech.NativeUnsafe, tech.NativeSafe, tech.NativeSafeNil,
	tech.SFI, tech.SFIFull, tech.Bytecode, tech.Script, tech.Domain,
}

// buildPagerWithGraft wires a pager whose LRU chain lives in graft memory
// and whose eviction policy is the pageevict graft under id.
func buildPagerWithGraft(t *testing.T, id tech.ID, frames int) (*kernel.Pager, *HotList, *vclock.Clock) {
	t.Helper()
	m := mem.New(PEMemSize)
	g, err := tech.Load(id, PageEvict, m, tech.Options{})
	if err != nil {
		t.Fatalf("load pageevict under %s: %v", id, err)
	}
	clock := &vclock.Clock{}
	p, err := kernel.NewPager(kernel.PagerConfig{
		Frames:   frames,
		Mem:      m,
		NodeBase: PELRUNodeBase,
	}, clock)
	if err != nil {
		t.Fatal(err)
	}
	p.SetPolicy(NewGraftEvictionPolicy(g))
	return p, NewHotList(m), clock
}

func TestEvictGraftSparesHotPages(t *testing.T) {
	for _, id := range evictTechs {
		t.Run(string(id), func(t *testing.T) {
			p, hot, _ := buildPagerWithGraft(t, id, 4)
			// Fill frames with pages 1..4; LRU order is 1,2,3,4.
			for pg := kernel.PageID(1); pg <= 4; pg++ {
				if _, err := p.Access(pg); err != nil {
					t.Fatal(err)
				}
			}
			// Pages 1 and 2 are hot; faulting 5 must evict 3 (first
			// non-hot in LRU order), not the LRU head 1.
			hot.Set([]kernel.PageID{1, 2})
			if _, err := p.Access(5); err != nil {
				t.Fatal(err)
			}
			if !p.Resident(1) || !p.Resident(2) {
				t.Fatalf("hot page evicted; resident: %v", p.LRUPages())
			}
			if p.Resident(3) {
				t.Fatalf("expected 3 evicted; resident: %v", p.LRUPages())
			}
			st := p.Stats()
			if st.PolicyCalls != 1 || st.PolicyOverrides != 1 {
				t.Errorf("stats = %+v", st)
			}
		})
	}
}

func TestEvictGraftAcceptsCandidateWhenNothingHot(t *testing.T) {
	p, hot, _ := buildPagerWithGraft(t, tech.NativeUnsafe, 3)
	for pg := kernel.PageID(10); pg < 13; pg++ {
		if _, err := p.Access(pg); err != nil {
			t.Fatal(err)
		}
	}
	hot.Set(nil)
	if _, err := p.Access(99); err != nil {
		t.Fatal(err)
	}
	if p.Resident(10) {
		t.Fatalf("LRU head should have been evicted; resident %v", p.LRUPages())
	}
	if st := p.Stats(); st.PolicyOverrides != 0 {
		t.Errorf("override counted for candidate acceptance: %+v", st)
	}
}

func TestEvictGraftAllHotFallsBackToCandidate(t *testing.T) {
	p, hot, _ := buildPagerWithGraft(t, tech.NativeUnsafe, 3)
	for pg := kernel.PageID(1); pg <= 3; pg++ {
		if _, err := p.Access(pg); err != nil {
			t.Fatal(err)
		}
	}
	hot.Set([]kernel.PageID{1, 2, 3})
	if _, err := p.Access(4); err != nil {
		t.Fatal(err)
	}
	// All hot: the graft returns the kernel's candidate (page 1).
	if p.Resident(1) {
		t.Fatalf("candidate not evicted; resident %v", p.LRUPages())
	}
}

// TestEvictGraftMatchesOracle drives a pager pair — graft policy vs the
// hand-written Go policy — through the TPC-B trace and requires identical
// eviction behaviour.
func TestEvictGraftMatchesOracle(t *testing.T) {
	tree := btree.MustBuild(btree.Config{L2Pages: 2, L3Pages: 10, Fanout: 32, DataBase: 100})

	run := func(useGraft bool) (kernel.PagerStats, []kernel.PageID) {
		m := mem.New(PEMemSize)
		clock := &vclock.Clock{}
		p, err := kernel.NewPager(kernel.PagerConfig{
			Frames: 48, Mem: m, NodeBase: PELRUNodeBase,
		}, clock)
		if err != nil {
			t.Fatal(err)
		}
		hot := NewHotList(m)
		if useGraft {
			g, err := tech.Load(tech.NativeUnsafe, PageEvict, m, tech.Options{})
			if err != nil {
				t.Fatal(err)
			}
			p.SetPolicy(NewGraftEvictionPolicy(g))
		} else {
			p.SetPolicy(&NativeEvictPolicy{Hot: hot})
		}
		err = tree.Scan(0, len(tree.L3), func(a btree.Access) error {
			if a.HotList != nil {
				hot.Set(a.HotList)
			}
			if _, err := p.Access(a.Page); err != nil {
				return err
			}
			hot.Remove(a.Page)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return p.Stats(), p.LRUPages()
	}

	gs, glru := run(true)
	ns, nlru := run(false)
	if gs.Faults != ns.Faults || gs.Evictions != ns.Evictions || gs.PolicyOverrides != ns.PolicyOverrides {
		t.Errorf("graft stats %+v != native stats %+v", gs, ns)
	}
	if len(glru) != len(nlru) {
		t.Fatalf("LRU lengths differ: %d vs %d", len(glru), len(nlru))
	}
	for i := range glru {
		if glru[i] != nlru[i] {
			t.Fatalf("LRU diverges at %d: %v vs %v", i, glru, nlru)
		}
	}
}

func TestHotListMaintenance(t *testing.T) {
	m := mem.New(PEMemSize)
	hl := NewHotList(m)
	if hl.Len() != 0 || m.Ld32U(PEHotHeadAddr) != 0 {
		t.Fatal("fresh hot list not empty")
	}
	hl.Set([]kernel.PageID{10, 20, 30})
	if hl.Len() != 3 || !hl.Contains(20) || hl.Contains(99) {
		t.Fatal("Set/Contains broken")
	}
	// Verify the in-memory linked list shape.
	n := m.Ld32U(PEHotHeadAddr)
	var got []uint32
	for n != 0 {
		got = append(got, m.Ld32U(n))
		n = m.Ld32U(n + 4)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("list = %v", got)
	}
	if !hl.Remove(20) || hl.Remove(20) {
		t.Fatal("Remove broken")
	}
	if hl.Len() != 2 || hl.Contains(20) {
		t.Fatal("Remove did not update")
	}
	n = m.Ld32U(PEHotHeadAddr)
	got = got[:0]
	for n != 0 {
		got = append(got, m.Ld32U(n))
		n = m.Ld32U(n + 4)
	}
	if len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Fatalf("after remove: %v", got)
	}
}

// TestEvictGraftRandomizedAgainstOracle fuzzes access patterns and checks
// the graft always proposes the same victim as the Go reference.
func TestEvictGraftRandomizedAgainstOracle(t *testing.T) {
	m := mem.New(PEMemSize)
	clock := &vclock.Clock{}
	p, err := kernel.NewPager(kernel.PagerConfig{Frames: 16, Mem: m, NodeBase: PELRUNodeBase}, clock)
	if err != nil {
		t.Fatal(err)
	}
	hot := NewHotList(m)
	g, err := tech.Load(tech.Bytecode, PageEvict, m, tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	graftPol := NewGraftEvictionPolicy(g)
	oracle := &NativeEvictPolicy{Hot: hot}

	rng := workload.NewRNG(42)
	for i := 0; i < 2000; i++ {
		pg := kernel.PageID(rng.Uint32n(64))
		if _, err := p.Access(pg); err != nil {
			t.Fatal(err)
		}
		if rng.Uint32n(4) == 0 {
			var hs []kernel.PageID
			for j := uint32(0); j < rng.Uint32n(10); j++ {
				hs = append(hs, kernel.PageID(rng.Uint32n(64)))
			}
			hot.Set(hs)
		}
		if p.ResidentCount() == 16 {
			lru := p.LRUPages()
			cand := lru[0]
			gv, gerr := graftPol.ChooseVictim(p, cand)
			nv, nerr := oracle.ChooseVictim(p, cand)
			if gerr != nil || nerr != nil {
				t.Fatalf("iter %d: errors %v %v", i, gerr, nerr)
			}
			if gv != nv {
				t.Fatalf("iter %d: graft=%d oracle=%d lru=%v", i, gv, nv, lru)
			}
		}
	}
}
