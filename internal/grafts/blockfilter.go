package grafts

import (
	"fmt"

	"graftlab/internal/kernel"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

// BlockFilter adapts any graft exporting
//
//	process(addr, len) -> outLen
//
// to the kernel's stream-filter interface: each block is marshaled into
// the graft's buffer window, transformed in place (or into the same
// window), and the graft's declared output length is read back. This is
// the general Stream graft carrier: a user writes the transformation in
// GEL or Tcl and plugs it into any filter chain.
type BlockFilter struct {
	name    string
	g       tech.Graft
	m       *mem.Memory
	call    func(args []uint32) (uint32, error)
	bufAddr uint32
	bufCap  uint32
	args    [2]uint32
	out     []byte
}

// NewBlockFilter wraps g's entry over the window [bufAddr, bufAddr+bufCap).
func NewBlockFilter(name string, g tech.Graft, entry string, bufAddr, bufCap uint32) (*BlockFilter, error) {
	m := g.Memory()
	if uint64(bufAddr)+uint64(bufCap) > uint64(m.Size()) {
		return nil, fmt.Errorf("grafts: filter window [%#x,+%d) outside graft memory", bufAddr, bufCap)
	}
	return &BlockFilter{
		name: name, g: g, m: m,
		call:    tech.ResolveDirect(g, entry),
		bufAddr: bufAddr, bufCap: bufCap,
	}, nil
}

// Name implements kernel.Filter.
func (f *BlockFilter) Name() string { return f.name }

// Process implements kernel.Filter.
func (f *BlockFilter) Process(p []byte) ([]byte, error) {
	out := f.out[:0]
	for len(p) > 0 {
		n := uint32(len(p))
		if n > f.bufCap {
			n = f.bufCap
		}
		f.m.WriteAt(f.bufAddr, p[:n])
		f.args[0] = f.bufAddr
		f.args[1] = n
		outLen, err := f.call(f.args[:])
		if err != nil {
			return nil, err
		}
		if outLen > f.bufCap {
			return nil, fmt.Errorf("grafts: filter %q claimed %d output bytes, window is %d", f.name, outLen, f.bufCap)
		}
		start := len(out)
		out = append(out, make([]byte, outLen)...)
		f.m.ReadAt(f.bufAddr, out[start:])
		p = p[n:]
	}
	f.out = out
	return out, nil
}

// Finish implements kernel.Filter.
func (f *BlockFilter) Finish() ([]byte, error) { return nil, nil }

var _ kernel.Filter = (*BlockFilter)(nil)
