package grafts

import (
	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

func init() { LDMap.Compiled = newCompiledLDMap }

// newCompiledLDMap is the hand-written compiled-class Logical Disk
// bookkeeping graft, one write/read pair per policy.
func newCompiledLDMap(cfg mem.Config, m *mem.Memory) (tech.Graft, error) {
	g := NewCompiledGraft(m)
	d := m.Data
	mask := m.Mask()

	var write, read func(lblock uint32) uint32
	switch {
	case cfg.Policy == mem.PolicyChecked && cfg.NilCheck:
		write = func(lb uint32) uint32 { return ldWriteNil(d, lb) }
		read = func(lb uint32) uint32 { return ldReadNil(d, lb) }
	case cfg.Policy == mem.PolicyChecked:
		write = func(lb uint32) uint32 { return ldWriteChk(d, lb) }
		read = func(lb uint32) uint32 { return ldReadChk(d, lb) }
	case cfg.Policy == mem.PolicySandbox && cfg.ReadProtect:
		write = func(lb uint32) uint32 { return ldWriteSFIFull(d, lb, mask) }
		read = func(lb uint32) uint32 { return ldReadSFIFull(d, lb, mask) }
	case cfg.Policy == mem.PolicySandbox:
		write = func(lb uint32) uint32 { return ldWriteSFI(d, lb, mask) }
		read = func(lb uint32) uint32 { return ldReadRaw(d, lb) } // loads unprotected
	default:
		write = func(lb uint32) uint32 { return ldWriteRaw(d, lb) }
		read = func(lb uint32) uint32 { return ldReadRaw(d, lb) }
	}
	g.Register("ld_init", 0, func([]uint32) uint32 {
		se32(d, LDSegAddr, 0)
		se32(d, LDFillAddr, 0)
		return 0
	})
	g.Register("ld_write", 1, func(a []uint32) uint32 { return write(a[0]) })
	g.Register("ld_read", 1, func(a []uint32) uint32 { return read(a[0]) })
	return g, nil
}

func ldReadSFIFull(d []byte, lb, mask uint32) uint32 {
	if lb >= ld32sfi(d, LDBlocksAddr, mask) {
		panic(&mem.Trap{Kind: mem.TrapAbort, Code: 1})
	}
	return ld32sfi(d, LDMapBase+lb*4, mask)
}

func ldWriteRaw(d []byte, lb uint32) uint32 {
	if lb >= le32(d, LDBlocksAddr) {
		panic(&mem.Trap{Kind: mem.TrapAbort, Code: 1})
	}
	seg := le32(d, LDSegAddr)
	if seg >= le32(d, LDSegCountAddr) {
		panic(&mem.Trap{Kind: mem.TrapAbort, Code: 2})
	}
	fill := le32(d, LDFillAddr)
	p := seg*16 + fill
	se32(d, LDMapBase+lb*4, p)
	fill++
	if fill == 16 {
		fill = 0
		se32(d, LDSegAddr, seg+1)
	}
	se32(d, LDFillAddr, fill)
	return p
}

func ldReadRaw(d []byte, lb uint32) uint32 {
	if lb >= le32(d, LDBlocksAddr) {
		panic(&mem.Trap{Kind: mem.TrapAbort, Code: 1})
	}
	return le32(d, LDMapBase+lb*4)
}

func ldWriteChk(d []byte, lb uint32) uint32 {
	if lb >= ld32chk(d, LDBlocksAddr) {
		panic(&mem.Trap{Kind: mem.TrapAbort, Code: 1})
	}
	seg := ld32chk(d, LDSegAddr)
	if seg >= ld32chk(d, LDSegCountAddr) {
		panic(&mem.Trap{Kind: mem.TrapAbort, Code: 2})
	}
	fill := ld32chk(d, LDFillAddr)
	p := seg*16 + fill
	st32chk(d, LDMapBase+lb*4, p)
	fill++
	if fill == 16 {
		fill = 0
		st32chk(d, LDSegAddr, seg+1)
	}
	st32chk(d, LDFillAddr, fill)
	return p
}

func ldReadChk(d []byte, lb uint32) uint32 {
	if lb >= ld32chk(d, LDBlocksAddr) {
		panic(&mem.Trap{Kind: mem.TrapAbort, Code: 1})
	}
	return ld32chk(d, LDMapBase+lb*4)
}

func ldWriteNil(d []byte, lb uint32) uint32 {
	if lb >= ld32nil(d, LDBlocksAddr) {
		panic(&mem.Trap{Kind: mem.TrapAbort, Code: 1})
	}
	seg := ld32nil(d, LDSegAddr)
	if seg >= ld32nil(d, LDSegCountAddr) {
		panic(&mem.Trap{Kind: mem.TrapAbort, Code: 2})
	}
	fill := ld32nil(d, LDFillAddr)
	p := seg*16 + fill
	st32nil(d, LDMapBase+lb*4, p)
	fill++
	if fill == 16 {
		fill = 0
		st32nil(d, LDSegAddr, seg+1)
	}
	st32nil(d, LDFillAddr, fill)
	return p
}

func ldReadNil(d []byte, lb uint32) uint32 {
	if lb >= ld32nil(d, LDBlocksAddr) {
		panic(&mem.Trap{Kind: mem.TrapAbort, Code: 1})
	}
	return ld32nil(d, LDMapBase+lb*4)
}

func ldWriteSFI(d []byte, lb, mask uint32) uint32 {
	if lb >= le32(d, LDBlocksAddr) {
		panic(&mem.Trap{Kind: mem.TrapAbort, Code: 1})
	}
	seg := le32(d, LDSegAddr)
	if seg >= le32(d, LDSegCountAddr) {
		panic(&mem.Trap{Kind: mem.TrapAbort, Code: 2})
	}
	fill := le32(d, LDFillAddr)
	p := seg*16 + fill
	st32sfi(d, LDMapBase+lb*4, p, mask)
	fill++
	if fill == 16 {
		fill = 0
		st32sfi(d, LDSegAddr, seg+1, mask)
	}
	st32sfi(d, LDFillAddr, fill, mask)
	return p
}

func ldWriteSFIFull(d []byte, lb, mask uint32) uint32 {
	if lb >= ld32sfi(d, LDBlocksAddr, mask) {
		panic(&mem.Trap{Kind: mem.TrapAbort, Code: 1})
	}
	seg := ld32sfi(d, LDSegAddr, mask)
	if seg >= ld32sfi(d, LDSegCountAddr, mask) {
		panic(&mem.Trap{Kind: mem.TrapAbort, Code: 2})
	}
	fill := ld32sfi(d, LDFillAddr, mask)
	p := seg*16 + fill
	st32sfi(d, LDMapBase+lb*4, p, mask)
	fill++
	if fill == 16 {
		fill = 0
		st32sfi(d, LDSegAddr, seg+1, mask)
	}
	st32sfi(d, LDFillAddr, fill, mask)
	return p
}
