package bytecode

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// mkFunc builds a minimal valid function returning a constant.
func mkFunc(name string) *Func {
	return &Func{
		Name:    name,
		NArgs:   0,
		NLocals: 0,
		Code: []Instr{
			{Op: OpConst, A: 7},
			{Op: OpRet},
		},
	}
}

func mkModule(funcs ...*Func) *Module {
	m := &Module{Funcs: funcs}
	m.Index()
	return m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := mkModule(
		&Func{Name: "f", NArgs: 2, NLocals: 3, Code: []Instr{
			{Op: OpLocalGet, A: 0},
			{Op: OpLocalGet, A: 1},
			{Op: OpAdd},
			{Op: OpRet},
		}},
		mkFunc("g"),
	)
	b := Encode(m)
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Funcs) != 2 {
		t.Fatalf("got %d funcs", len(got.Funcs))
	}
	f := got.Func("f")
	if f == nil || f.NArgs != 2 || f.NLocals != 3 || len(f.Code) != 4 {
		t.Fatalf("f = %+v", f)
	}
	for i, in := range f.Code {
		if in != m.Funcs[0].Code[i] {
			t.Errorf("instr %d: got %v want %v", i, in, m.Funcs[0].Code[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("GBC"),
		[]byte("XXXX\x00\x00\x00\x00"),
		[]byte("GBC1"),                 // truncated count
		[]byte("GBC1\x01\x00\x00\x00"), // one func, no body
		append(Encode(mkModule(mkFunc("f"))), 0xFF), // trailing byte
	}
	for i, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("case %d: Decode accepted garbage", i)
		} else if !errors.Is(err, ErrBadModule) {
			t.Errorf("case %d: error %v is not ErrBadModule", i, err)
		}
	}
}

func TestDecodeRejectsHugeCounts(t *testing.T) {
	// A module claiming 2^31 functions must be rejected before allocation.
	b := []byte("GBC1")
	b = append(b, 0x00, 0x00, 0x00, 0x80)
	if _, err := Decode(b); err == nil {
		t.Fatal("accepted absurd function count")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	// Property: any module we can construct from valid fields round-trips.
	f := func(name string, nargs8 uint8, extra uint8, consts []uint32) bool {
		if len(name) > 64 {
			name = name[:64]
		}
		nargs := int(nargs8 % 8)
		fn := &Func{Name: name, NArgs: nargs, NLocals: nargs + int(extra%8)}
		for _, c := range consts {
			fn.Code = append(fn.Code, Instr{Op: OpConst, A: c})
			fn.Code = append(fn.Code, Instr{Op: OpDrop})
		}
		fn.Code = append(fn.Code, Instr{Op: OpConst, A: 1}, Instr{Op: OpRet})
		m := mkModule(fn)
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		g := got.Funcs[0]
		if g.Name != name || g.NArgs != fn.NArgs || g.NLocals != fn.NLocals || len(g.Code) != len(fn.Code) {
			return false
		}
		for i := range g.Code {
			if g.Code[i] != fn.Code[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyAcceptsGoodCode(t *testing.T) {
	m := mkModule(
		&Func{Name: "abs-diff", NArgs: 2, NLocals: 2, Code: []Instr{
			{Op: OpLocalGet, A: 0},
			{Op: OpLocalGet, A: 1},
			{Op: OpLtU},
			{Op: OpJz, A: 8},
			{Op: OpLocalGet, A: 1},
			{Op: OpLocalGet, A: 0},
			{Op: OpSub},
			{Op: OpRet},
			{Op: OpLocalGet, A: 0},
			{Op: OpLocalGet, A: 1},
			{Op: OpSub},
			{Op: OpRet},
		}},
	)
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejections(t *testing.T) {
	cases := []struct {
		name string
		fn   *Func
		want string
	}{
		{
			"empty body",
			&Func{Name: "f", Code: nil},
			"empty function",
		},
		{
			"args exceed locals",
			&Func{Name: "f", NArgs: 3, NLocals: 1, Code: []Instr{{Op: OpConst}, {Op: OpRet}}},
			"NArgs",
		},
		{
			"bad opcode",
			&Func{Name: "f", Code: []Instr{{Op: Op(200)}, {Op: OpRet}}},
			"undefined opcode",
		},
		{
			"stack underflow",
			&Func{Name: "f", Code: []Instr{{Op: OpAdd}, {Op: OpRet}}},
			"underflow",
		},
		{
			"ret without value",
			&Func{Name: "f", Code: []Instr{{Op: OpRet}}},
			"underflow",
		},
		{
			"jump out of range",
			&Func{Name: "f", Code: []Instr{{Op: OpJmp, A: 99}, {Op: OpConst}, {Op: OpRet}}},
			"out of range",
		},
		{
			"falls off end",
			&Func{Name: "f", Code: []Instr{{Op: OpConst, A: 1}}},
			"falls off end",
		},
		{
			"oob local",
			&Func{Name: "f", NLocals: 1, Code: []Instr{{Op: OpLocalGet, A: 5}, {Op: OpRet}}},
			"local slot",
		},
		{
			"oob call",
			&Func{Name: "f", Code: []Instr{{Op: OpCall, A: 9}, {Op: OpRet}}},
			"undefined function index",
		},
		{
			"inconsistent join",
			&Func{Name: "f", Code: []Instr{
				{Op: OpConst, A: 1}, // depth 1
				{Op: OpJz, A: 0},    // pop -> jump to 0 expects depth 0, but falls to 2 with depth 0; target 0 already depth 0: ok... make a real conflict:
				{Op: OpConst, A: 1},
				{Op: OpConst, A: 1},
				{Op: OpJz, A: 0}, // jump to 0 with depth 1 conflicts with recorded depth 0
				{Op: OpRet},
			}},
			"inconsistent stack depth",
		},
	}
	for _, c := range cases {
		m := mkModule(c.fn)
		err := Verify(m)
		if err == nil {
			t.Errorf("%s: verification passed, want failure", c.name)
			continue
		}
		if !errors.Is(err, ErrVerify) {
			t.Errorf("%s: error %v is not ErrVerify", c.name, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q, want substring %q", c.name, err, c.want)
		}
	}
}

func TestVerifyCallStackEffect(t *testing.T) {
	callee := &Func{Name: "two-args", NArgs: 2, NLocals: 2, Code: []Instr{
		{Op: OpConst, A: 0}, {Op: OpRet},
	}}
	// Caller pushes only one argument: underflow at the call.
	caller := &Func{Name: "caller", Code: []Instr{
		{Op: OpConst, A: 1},
		{Op: OpCall, A: 0},
		{Op: OpRet},
	}}
	m := mkModule(callee, caller)
	if err := Verify(m); err == nil {
		t.Fatal("call with missing argument verified")
	}
	// With both arguments it verifies.
	caller.Code = []Instr{
		{Op: OpConst, A: 1},
		{Op: OpConst, A: 2},
		{Op: OpCall, A: 0},
		{Op: OpRet},
	}
	if err := Verify(mkModule(callee, caller)); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyLinearTime(t *testing.T) {
	// A long straight-line function verifies; guards against the worklist
	// revisiting instructions superlinearly.
	fn := &Func{Name: "long"}
	for i := 0; i < 100000; i++ {
		fn.Code = append(fn.Code, Instr{Op: OpConst, A: uint32(i)}, Instr{Op: OpDrop})
	}
	fn.Code = append(fn.Code, Instr{Op: OpConst, A: 1}, Instr{Op: OpRet})
	if err := Verify(mkModule(fn)); err != nil {
		t.Fatal(err)
	}
}

func TestMaxStack(t *testing.T) {
	m := mkModule(&Func{Name: "f", Code: []Instr{
		{Op: OpConst, A: 1},
		{Op: OpConst, A: 2},
		{Op: OpConst, A: 3},
		{Op: OpAdd},
		{Op: OpAdd},
		{Op: OpRet},
	}})
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	if got := MaxStack(m, m.Funcs[0]); got != 3 {
		t.Fatalf("MaxStack = %d, want 3", got)
	}
}

func TestDisassembleMentionsEveryOp(t *testing.T) {
	m := mkModule(
		mkFunc("callee"),
		&Func{Name: "f", NArgs: 0, NLocals: 1, Code: []Instr{
			{Op: OpConst, A: 42},
			{Op: OpLocalSet, A: 0},
			{Op: OpLocalGet, A: 0},
			{Op: OpJz, A: 5},
			{Op: OpJmp, A: 5},
			{Op: OpCall, A: 0},
			{Op: OpRet},
		}},
	)
	text := Disassemble(m)
	for _, want := range []string{"func f", "const", "local.set", "jz", "-> 5", "call", "; callee", "ret"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly lacks %q:\n%s", want, text)
		}
	}
}

func TestOpStrings(t *testing.T) {
	if OpAdd.String() != "add" || Op(250).String() == "add" {
		t.Error("Op.String broken")
	}
	if !OpConst.HasOperand() || OpAdd.HasOperand() {
		t.Error("HasOperand broken")
	}
}
