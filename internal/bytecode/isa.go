// Package bytecode defines the stack-machine instruction set that the
// interpreted technology class executes (the paper's Java analogue), a
// compact binary module format, and a linear-time load-time verifier (the
// paper's SFI load-time check analogue).
//
// The machine is a pure stack machine over u32 words. A function owns
// NLocals local slots; its arguments arrive in slots [0, NArgs). Calls
// push arguments left to right; OpCall transfers them into the callee's
// locals. Every function returns exactly one word.
package bytecode

import "fmt"

// Op is an opcode.
type Op byte

const (
	OpNop Op = iota
	OpConst
	OpLocalGet
	OpLocalSet
	OpDrop

	// binary ALU ops: pop y, pop x, push x·y
	OpAdd
	OpSub
	OpMul
	OpDivU
	OpRemU
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShrU
	OpRotl
	OpRotr
	OpMinU
	OpMaxU

	// comparisons: pop y, pop x, push 0/1
	OpEq
	OpNe
	OpLtU
	OpLeU
	OpGtU
	OpGeU

	// unary: pop x, push op x
	OpEqz // logical not

	// memory: addresses are u32 byte offsets into the linear memory
	OpLd32 // pop addr, push word
	OpLd8  // pop addr, push byte
	OpSt32 // pop value, pop addr
	OpSt8  // pop value, pop addr

	// control: targets are absolute instruction indices in this function
	OpJmp
	OpJz  // pop cond, jump if zero
	OpJnz // pop cond, jump if nonzero

	OpCall // A = function index; pops callee args, pushes result
	OpRet  // pop return value, leave function

	OpMemSize // push memory size in bytes
	OpAbort   // pop code, trap

	opCount // sentinel
)

// NumOps is the number of defined opcodes.
const NumOps = int(opCount)

type opInfo struct {
	name string
	// pop/push are net stack effects, excluding OpCall which is variable.
	pop, push  int
	hasOperand bool
}

var opTable = [opCount]opInfo{
	OpNop:      {"nop", 0, 0, false},
	OpConst:    {"const", 0, 1, true},
	OpLocalGet: {"local.get", 0, 1, true},
	OpLocalSet: {"local.set", 1, 0, true},
	OpDrop:     {"drop", 1, 0, false},
	OpAdd:      {"add", 2, 1, false},
	OpSub:      {"sub", 2, 1, false},
	OpMul:      {"mul", 2, 1, false},
	OpDivU:     {"div_u", 2, 1, false},
	OpRemU:     {"rem_u", 2, 1, false},
	OpAnd:      {"and", 2, 1, false},
	OpOr:       {"or", 2, 1, false},
	OpXor:      {"xor", 2, 1, false},
	OpShl:      {"shl", 2, 1, false},
	OpShrU:     {"shr_u", 2, 1, false},
	OpRotl:     {"rotl", 2, 1, false},
	OpRotr:     {"rotr", 2, 1, false},
	OpMinU:     {"min_u", 2, 1, false},
	OpMaxU:     {"max_u", 2, 1, false},
	OpEq:       {"eq", 2, 1, false},
	OpNe:       {"ne", 2, 1, false},
	OpLtU:      {"lt_u", 2, 1, false},
	OpLeU:      {"le_u", 2, 1, false},
	OpGtU:      {"gt_u", 2, 1, false},
	OpGeU:      {"ge_u", 2, 1, false},
	OpEqz:      {"eqz", 1, 1, false},
	OpLd32:     {"ld32", 1, 1, false},
	OpLd8:      {"ld8", 1, 1, false},
	OpSt32:     {"st32", 2, 0, false},
	OpSt8:      {"st8", 2, 0, false},
	OpJmp:      {"jmp", 0, 0, true},
	OpJz:       {"jz", 1, 0, true},
	OpJnz:      {"jnz", 1, 0, true},
	OpCall:     {"call", 0, 0, true}, // stack effect resolved by verifier
	OpRet:      {"ret", 1, 0, false},
	OpMemSize:  {"memsize", 0, 1, false},
	OpAbort:    {"abort", 1, 0, false},
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < opCount }

func (op Op) String() string {
	if op.Valid() {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", byte(op))
}

// HasOperand reports whether op carries an immediate operand.
func (op Op) HasOperand() bool { return op.Valid() && opTable[op].hasOperand }

// Instr is one decoded instruction.
type Instr struct {
	Op Op
	A  uint32 // immediate operand (constant, local slot, target, func index)
}

func (in Instr) String() string {
	if in.Op.HasOperand() {
		return fmt.Sprintf("%s %d", in.Op, in.A)
	}
	return in.Op.String()
}

// Func is one function body.
type Func struct {
	Name    string
	NArgs   int
	NLocals int // includes NArgs
	Code    []Instr
	// Lines, when non-nil, is the debug line table: Lines[i] is the
	// 1-based source line that produced Code[i] (0 when unknown). It is
	// in-memory only — Encode drops it and Decode leaves it nil — so the
	// binary module format is unchanged; the profiler degrades to
	// function-granular attribution for modules loaded from disk.
	Lines []int32
}

// Line returns the 1-based source line for Code[pc], or 0 when the
// function carries no line table or pc is out of range.
func (f *Func) Line(pc int) int {
	if pc >= 0 && pc < len(f.Lines) {
		return int(f.Lines[pc])
	}
	return 0
}

// Module is a compiled unit of graft code.
type Module struct {
	Funcs  []*Func
	ByName map[string]int
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Func {
	if i, ok := m.ByName[name]; ok {
		return m.Funcs[i]
	}
	return nil
}

// Index rebuilds the ByName map; call after constructing a Module by hand.
func (m *Module) Index() {
	m.ByName = make(map[string]int, len(m.Funcs))
	for i, f := range m.Funcs {
		m.ByName[f.Name] = i
	}
}
