package bytecode

import (
	"fmt"
	"strings"
)

// Disassemble renders m as human-readable text, one function per section.
func Disassemble(m *Module) string {
	var b strings.Builder
	for _, f := range m.Funcs {
		fmt.Fprintf(&b, "func %s (args=%d locals=%d)\n", f.Name, f.NArgs, f.NLocals)
		for pc, in := range f.Code {
			switch in.Op {
			case OpCall:
				callee := "?"
				if int(in.A) < len(m.Funcs) {
					callee = m.Funcs[in.A].Name
				}
				fmt.Fprintf(&b, "  %4d  %-10s %d    ; %s\n", pc, in.Op, in.A, callee)
			case OpJmp, OpJz, OpJnz:
				fmt.Fprintf(&b, "  %4d  %-10s -> %d\n", pc, in.Op, in.A)
			default:
				if in.Op.HasOperand() {
					fmt.Fprintf(&b, "  %4d  %-10s %d\n", pc, in.Op, in.A)
				} else {
					fmt.Fprintf(&b, "  %4d  %s\n", pc, in.Op)
				}
			}
		}
	}
	return b.String()
}
