package bytecode

import (
	"errors"
	"fmt"
)

// Verify is the load-time check the kernel runs before accepting a module,
// the analogue of the paper's "linear-time algorithm ... to guarantee that
// all memory references in a piece of object code have been correctly
// sandboxed" (§4.2). It guarantees, in time linear in code size, that a
// verified module cannot:
//
//   - execute an undefined opcode,
//   - jump outside its own function,
//   - read or write a local slot it does not own,
//   - call a function index that does not exist,
//   - underflow or overflow the operand stack (stack depth at every
//     instruction is computed by abstract interpretation and must be
//     consistent across all control-flow edges),
//   - fall off the end of a function (the last reachable instruction on
//     every path is a terminator).
//
// Memory accesses are NOT statically bounded here; they are guarded at run
// time by the executing technology's policy. That split mirrors the paper:
// the verifier checks structure, the policy checks data.

// ErrVerify is wrapped by all verification failures.
var ErrVerify = errors.New("bytecode: verification failed")

func vErrf(fn string, pc int, format string, args ...any) error {
	return fmt.Errorf("%w: %s+%d: %s", ErrVerify, fn, pc, fmt.Sprintf(format, args...))
}

// MaxStackDepth bounds the operand stack a verified function may need.
const MaxStackDepth = 1 << 16

// Verify checks every function in m.
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if _, err := verifyFunc(m, f); err != nil {
			return err
		}
	}
	return nil
}

// StackDepths runs the verifier's abstract interpretation over f and
// returns the operand stack depth on entry to every instruction; entries
// for unreachable code are -1. It is the exact pass Verify runs per
// function — an error here is a verification failure and vice versa — so
// downstream load-time passes that need per-pc depths (the AOT
// translator's block reconstruction) accept and reject precisely the
// modules Verify does, by construction rather than by parallel
// re-implementation.
func StackDepths(m *Module, f *Func) ([]int, error) {
	return verifyFunc(m, f)
}

func verifyFunc(m *Module, f *Func) ([]int, error) {
	if f.NArgs > f.NLocals {
		return nil, vErrf(f.Name, 0, "NArgs %d > NLocals %d", f.NArgs, f.NLocals)
	}
	if len(f.Code) == 0 {
		return nil, vErrf(f.Name, 0, "empty function body")
	}

	// Static operand validation over every instruction, reachable or not.
	// The depth pass below only visits reachable code, but the load-time
	// translators (the optimizing VM's superinstruction pass, the AOT
	// lowering) process whole function bodies — an undefined opcode or a
	// wild jump target in dead code must be rejected here, with this
	// taxonomy, rather than surface as a translator error that only some
	// engines raise. (Found by differential fuzzing: a module whose
	// unreachable tail jumped out of range verified cleanly but was
	// refused by the translators.)
	for pc, in := range f.Code {
		if !in.Op.Valid() {
			return nil, vErrf(f.Name, pc, "undefined opcode %d", byte(in.Op))
		}
		switch in.Op {
		case OpLocalGet, OpLocalSet:
			if in.A >= uint32(f.NLocals) {
				return nil, vErrf(f.Name, pc, "local slot %d out of range [0,%d)", in.A, f.NLocals)
			}
		case OpCall:
			if in.A >= uint32(len(m.Funcs)) {
				return nil, vErrf(f.Name, pc, "call to undefined function index %d", in.A)
			}
		case OpJmp, OpJz, OpJnz:
			if in.A >= uint32(len(f.Code)) {
				return nil, vErrf(f.Name, pc, "jump target %d out of range [0,%d)", in.A, len(f.Code))
			}
		}
	}

	// depth[pc] is the operand stack depth on entry to pc; -1 = not yet seen.
	depth := make([]int, len(f.Code))
	for i := range depth {
		depth[i] = -1
	}
	// Worklist of instruction indices to (re)visit. Each pc enters the
	// worklist at most once because a conflicting second depth is an error,
	// so the pass is linear.
	work := []int{0}
	depth[0] = 0

	propagate := func(from, to, d int) error {
		if to < 0 || to >= len(f.Code) {
			return vErrf(f.Name, from, "jump target %d out of range [0,%d)", to, len(f.Code))
		}
		if depth[to] == -1 {
			depth[to] = d
			work = append(work, to)
			return nil
		}
		if depth[to] != d {
			return vErrf(f.Name, from, "inconsistent stack depth at join %d: %d vs %d", to, depth[to], d)
		}
		return nil
	}

	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := f.Code[pc]
		if !in.Op.Valid() {
			return nil, vErrf(f.Name, pc, "undefined opcode %d", byte(in.Op))
		}
		d := depth[pc]
		info := opTable[in.Op]

		pop, push := info.pop, info.push
		switch in.Op {
		case OpLocalGet, OpLocalSet:
			if in.A >= uint32(f.NLocals) {
				return nil, vErrf(f.Name, pc, "local slot %d out of range [0,%d)", in.A, f.NLocals)
			}
		case OpCall:
			if in.A >= uint32(len(m.Funcs)) {
				return nil, vErrf(f.Name, pc, "call to undefined function index %d", in.A)
			}
			pop = m.Funcs[in.A].NArgs
			push = 1
		}
		if d < pop {
			return nil, vErrf(f.Name, pc, "stack underflow: %s needs %d, depth is %d", in.Op, pop, d)
		}
		nd := d - pop + push
		if nd > MaxStackDepth {
			return nil, vErrf(f.Name, pc, "stack depth %d exceeds limit", nd)
		}

		switch in.Op {
		case OpJmp:
			if err := propagate(pc, int(in.A), nd); err != nil {
				return nil, err
			}
		case OpJz, OpJnz:
			if err := propagate(pc, int(in.A), nd); err != nil {
				return nil, err
			}
			if err := propagate(pc, pc+1, nd); err != nil {
				return nil, err
			}
		case OpRet:
			// terminator; nothing to propagate. The pop==1 check above
			// guarantees a return value was present.
		case OpAbort:
			// terminator.
		default:
			if pc+1 >= len(f.Code) {
				return nil, vErrf(f.Name, pc, "control falls off end of function after %s", in.Op)
			}
			if err := propagate(pc, pc+1, nd); err != nil {
				return nil, err
			}
		}
	}
	return depth, nil
}

// MaxStack computes the maximum operand stack depth any reachable point of
// f needs, for preallocating interpreter stacks. Requires a verified
// function; returns 0 for unverifiable code.
func MaxStack(m *Module, f *Func) int {
	// Re-run the same abstract interpretation, tracking the max.
	depth := make([]int, len(f.Code))
	for i := range depth {
		depth[i] = -1
	}
	if len(f.Code) == 0 {
		return 0
	}
	depth[0] = 0
	work := []int{0}
	maxd := 0
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := f.Code[pc]
		if !in.Op.Valid() {
			return 0
		}
		d := depth[pc]
		info := opTable[in.Op]
		pop, push := info.pop, info.push
		if in.Op == OpCall {
			if in.A >= uint32(len(m.Funcs)) {
				return 0
			}
			pop = m.Funcs[in.A].NArgs
			push = 1
		}
		nd := d - pop + push
		if nd > maxd {
			maxd = nd
		}
		visit := func(t int) {
			if t >= 0 && t < len(f.Code) && depth[t] == -1 {
				depth[t] = nd
				work = append(work, t)
			}
		}
		switch in.Op {
		case OpJmp:
			visit(int(in.A))
		case OpJz, OpJnz:
			visit(int(in.A))
			visit(pc + 1)
		case OpRet, OpAbort:
		default:
			visit(pc + 1)
		}
	}
	return maxd
}
