package bytecode

// Static basic-block analysis shared by optimizing execution engines.
//
// A basic block is a maximal straight-line run of instructions: control
// enters only at the first instruction (the leader) and, once entered, every
// instruction in the block executes before control leaves through the
// block's terminator. That single-entry/run-to-completion property is what
// lets a translator charge fuel once per block entry instead of once per
// instruction while preserving the same completion threshold.

// Leaders marks the basic-block leaders of f: leaders[pc] is true when pc
// starts a basic block. Leaders are instruction 0, every jump target, and
// every instruction following a branch or terminator (OpJmp, OpJz, OpJnz,
// OpRet, OpAbort). Call on verified code only; jump operands are trusted.
func Leaders(f *Func) []bool {
	leaders := make([]bool, len(f.Code))
	if len(f.Code) == 0 {
		return leaders
	}
	leaders[0] = true
	for pc, in := range f.Code {
		switch in.Op {
		case OpJmp, OpJz, OpJnz:
			if t := int(in.A); t < len(f.Code) {
				leaders[t] = true
			}
			if pc+1 < len(f.Code) {
				leaders[pc+1] = true
			}
		case OpRet, OpAbort:
			if pc+1 < len(f.Code) {
				leaders[pc+1] = true
			}
		}
	}
	return leaders
}

// BlockCosts returns, for each leader pc, the number of instructions in the
// block starting there (its fuel cost under block-granular metering);
// non-leader entries are 0. The cost of a block is the distance from its
// leader to the next leader or the end of code, so summing the costs of the
// blocks a trace enters equals the number of instructions the trace would
// execute one by one.
func BlockCosts(f *Func, leaders []bool) []uint32 {
	costs := make([]uint32, len(f.Code))
	end := len(f.Code)
	for pc := len(f.Code) - 1; pc >= 0; pc-- {
		if leaders[pc] {
			costs[pc] = uint32(end - pc)
			end = pc
		}
	}
	return costs
}
