package bytecode

import "testing"

// A small function with a loop:
//
//	0: const 0        ; i = 0            <- leader (entry)
//	1: local.set 0
//	2: local.get 0    ;                  <- leader (jump target of 8)
//	3: const 10
//	4: lt_u
//	5: jz 9
//	6: local.get 0    ;                  <- leader (after branch)
//	7: local.set 0
//	8: jmp 2
//	9: const 42       ;                  <- leader (jump target of 5, after jmp)
//	10: ret
func loopFunc() *Func {
	return &Func{
		Name:    "loop",
		NLocals: 1,
		Code: []Instr{
			{Op: OpConst, A: 0},
			{Op: OpLocalSet, A: 0},
			{Op: OpLocalGet, A: 0},
			{Op: OpConst, A: 10},
			{Op: OpLtU},
			{Op: OpJz, A: 9},
			{Op: OpLocalGet, A: 0},
			{Op: OpLocalSet, A: 0},
			{Op: OpJmp, A: 2},
			{Op: OpConst, A: 42},
			{Op: OpRet},
		},
	}
}

func TestLeaders(t *testing.T) {
	f := loopFunc()
	got := Leaders(f)
	want := map[int]bool{0: true, 2: true, 6: true, 9: true}
	for pc := range f.Code {
		if got[pc] != want[pc] {
			t.Errorf("leaders[%d] = %v, want %v", pc, got[pc], want[pc])
		}
	}
}

func TestBlockCosts(t *testing.T) {
	f := loopFunc()
	leaders := Leaders(f)
	costs := BlockCosts(f, leaders)
	want := map[int]uint32{0: 2, 2: 4, 6: 3, 9: 2}
	var sum uint32
	for pc := range f.Code {
		if costs[pc] != want[pc] {
			t.Errorf("costs[%d] = %d, want %d", pc, costs[pc], want[pc])
		}
		sum += costs[pc]
	}
	if sum != uint32(len(f.Code)) {
		t.Errorf("block costs sum to %d, want %d (every instruction in exactly one block)", sum, len(f.Code))
	}
}

func TestLeadersEmpty(t *testing.T) {
	if got := Leaders(&Func{Name: "empty"}); len(got) != 0 {
		t.Fatalf("Leaders(empty) = %v", got)
	}
}
