package bytecode

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary module format ("GBC1"):
//
//	magic   [4]byte "GBC1"
//	nfuncs  u32
//	per function:
//	  namelen u32, name [namelen]byte
//	  nargs   u32
//	  nlocals u32
//	  ninstr  u32
//	  per instruction: op u8, operand u32 (always present; 0 if unused)
//
// Fixed-width operands keep decode trivially linear; graft modules are
// small, so density is not worth variable-length encoding.

var magic = [4]byte{'G', 'B', 'C', '1'}

// ErrBadModule is wrapped by all decode failures.
var ErrBadModule = errors.New("bytecode: malformed module")

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadModule, fmt.Sprintf(format, args...))
}

// Encode serializes m to the binary module format.
func Encode(m *Module) []byte {
	size := 8
	for _, f := range m.Funcs {
		size += 4 + len(f.Name) + 12 + 5*len(f.Code)
	}
	out := make([]byte, 0, size)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(m.Funcs)))
	for _, f := range m.Funcs {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(f.Name)))
		out = append(out, f.Name...)
		out = binary.LittleEndian.AppendUint32(out, uint32(f.NArgs))
		out = binary.LittleEndian.AppendUint32(out, uint32(f.NLocals))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(f.Code)))
		for _, in := range f.Code {
			out = append(out, byte(in.Op))
			out = binary.LittleEndian.AppendUint32(out, in.A)
		}
	}
	return out
}

type decoder struct {
	b   []byte
	off int
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > len(d.b) {
		return 0, badf("truncated at offset %d", d.off)
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u8() (byte, error) {
	if d.off >= len(d.b) {
		return 0, badf("truncated at offset %d", d.off)
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *decoder) bytes(n uint32) ([]byte, error) {
	if uint64(d.off)+uint64(n) > uint64(len(d.b)) {
		return nil, badf("truncated string at offset %d", d.off)
	}
	v := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return v, nil
}

// maxFuncs and maxInstrs bound decode-time allocation so a hostile module
// cannot make the loader allocate unboundedly before verification.
const (
	maxFuncs  = 1 << 16
	maxInstrs = 1 << 22
	maxName   = 1 << 10
	maxLocals = 1 << 16
)

// Decode parses a binary module. Decode performs only structural
// validation; call Verify for the semantic load-time check.
func Decode(b []byte) (*Module, error) {
	d := &decoder{b: b}
	mg, err := d.bytes(4)
	if err != nil {
		return nil, err
	}
	if [4]byte(mg) != magic {
		return nil, badf("bad magic %q", mg)
	}
	nfuncs, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nfuncs > maxFuncs {
		return nil, badf("function count %d exceeds limit", nfuncs)
	}
	m := &Module{Funcs: make([]*Func, 0, nfuncs)}
	for i := uint32(0); i < nfuncs; i++ {
		namelen, err := d.u32()
		if err != nil {
			return nil, err
		}
		if namelen > maxName {
			return nil, badf("function %d: name length %d exceeds limit", i, namelen)
		}
		name, err := d.bytes(namelen)
		if err != nil {
			return nil, err
		}
		nargs, err := d.u32()
		if err != nil {
			return nil, err
		}
		nlocals, err := d.u32()
		if err != nil {
			return nil, err
		}
		if nlocals > maxLocals || nargs > nlocals {
			return nil, badf("function %q: bad arg/local counts %d/%d", name, nargs, nlocals)
		}
		ninstr, err := d.u32()
		if err != nil {
			return nil, err
		}
		if ninstr > maxInstrs {
			return nil, badf("function %q: instruction count %d exceeds limit", name, ninstr)
		}
		f := &Func{
			Name:    string(name),
			NArgs:   int(nargs),
			NLocals: int(nlocals),
			Code:    make([]Instr, ninstr),
		}
		for j := uint32(0); j < ninstr; j++ {
			op, err := d.u8()
			if err != nil {
				return nil, err
			}
			a, err := d.u32()
			if err != nil {
				return nil, err
			}
			f.Code[j] = Instr{Op: Op(op), A: a}
		}
		m.Funcs = append(m.Funcs, f)
	}
	if d.off != len(b) {
		return nil, badf("%d trailing bytes", len(b)-d.off)
	}
	m.Index()
	return m, nil
}
