package netsim

import (
	"fmt"

	"graftlab/internal/tech"
)

// The batched receive path: instead of one technology-boundary crossing
// per frame, the demultiplexer marshals a chunk of frames into per-frame
// slots and hands the whole chunk to the filter graft in one invocation —
// the XDP-style amortization modern kernel-extension runtimes use on the
// receive path. The protocol is graft-visible memory plus one return
// value:
//
//   - frames land in SlotSize-byte slots starting at BufAddr (slot 0 is
//     the single-frame buffer, so a batch of one is the old layout),
//   - frame lengths land in a u32 table at LenBase,
//   - the host pre-fills a u32 verdict table at VerdictBase with the
//     VerdictNone sentinel; store-capable classes overwrite it with 0/1
//     per frame as they go,
//   - the entry returns the accept bitmask (bit i = frame i accepted).
//
// The mask is the one channel every technology class shares: the Domain
// (HiPEC) filter language has loads but no stores, so it can only answer
// through the return value — which is also why a crossing carries at most
// 32 frames (the mask width). Larger deliveries chunk into multiple
// crossings.
//
// Trap attribution follows the sentinel: when a batch invocation traps,
// verdicts already committed to the table are honored, the first slot
// still holding the sentinel is the in-flight frame — charged the error
// and treated as a rejection, exactly like a single-frame trap — and the
// frames after it are re-batched in a fresh invocation. A mask-only
// (Domain) endpoint has no committed verdicts to honor, so its chunk is
// refiltered one frame at a time through the single-frame entry instead.
//
// Equivalence contract: DeliverBatch produces the same assignments and
// counters as per-frame Deliver calls when filters are pure per-frame
// functions of the frame bytes and host-configured state, and frames fit
// their slots. Two documented divergences: a fuel budget is per
// invocation, so a batched crossing meters ~n frames against one budget;
// and access-scheduled fault plans (mem.FaultPlan) count accesses across
// the whole batched invocation, so the Nth access lands on a different
// frame than it would single-stepped. Batching is endpoint-major (all
// pending frames through endpoint 1, the leftovers through endpoint 2,
// ...) while Deliver is frame-major; per-(frame, endpoint) independence
// makes the outcomes identical.
//
// Concurrency model: a Demux, like a Graft, is single-threaded. Per-CPU
// receive queues are modeled by giving each worker its own Demux over its
// own pooled instance (tech.Pool) — see RegisterBatchPooled callers in
// the bench and stress suites.

// BatchConfig describes a batch-capable endpoint's protocol layout.
type BatchConfig struct {
	// Entry is the batch entry point, invoked with the chunk size.
	Entry string
	// SingleEntry is the single-frame entry point, used by Deliver and
	// by the mask-only trap fallback.
	SingleEntry string
	// BufAddr is slot 0 (also the single-frame marshaling buffer).
	BufAddr uint32
	// SlotSize is the per-frame slot stride; longer frames are truncated
	// to the slot (the equivalence contract assumes frames fit).
	SlotSize uint32
	// LenBase is the u32 frame-length table.
	LenBase uint32
	// VerdictBase is the u32 verdict table; HasVerdicts selects the
	// sentinel trap-attribution protocol. Mask-only classes (the Domain
	// language cannot store) leave HasVerdicts false.
	HasVerdicts bool
	VerdictBase uint32
	// VerdictNone is the host-written sentinel verdict.
	VerdictNone uint32
	// MaxBatch caps frames per crossing; clamped to 32 (the mask width).
	// 0 means 32.
	MaxBatch uint32
}

// BatchStats counts batched-path activity. It is deliberately separate
// from DemuxStats, which stays byte-identical between the batched and
// single-frame paths.
type BatchStats struct {
	// Calls is the number of batch invocations (boundary crossings).
	Calls uint64
	// Frames is the total frames offered through batch invocations.
	Frames uint64
	// Traps is the number of batch invocations that trapped.
	Traps uint64
	// Refiltered counts frames refiltered one at a time after a
	// mask-only endpoint's batch invocation trapped.
	Refiltered uint64
}

// maskWidth is the hard per-crossing cap: the accept mask is a u32.
const maskWidth = 32

// RegisterBatch adds a batch-capable endpoint whose filter is the graft
// g. The endpoint still serves the single-frame Deliver path through
// cfg.SingleEntry; DeliverBatch uses cfg.Entry with the slot protocol.
func (d *Demux) RegisterBatch(name string, g tech.Graft, cfg BatchConfig) (*Endpoint, error) {
	if cfg.Entry == "" || cfg.SingleEntry == "" {
		return nil, fmt.Errorf("netsim: batch endpoint %q needs Entry and SingleEntry", name)
	}
	if cfg.SlotSize == 0 {
		return nil, fmt.Errorf("netsim: batch endpoint %q needs a SlotSize", name)
	}
	max := cfg.MaxBatch
	if max == 0 || max > maskWidth {
		max = maskWidth
	}
	m := g.Memory()
	if end := uint64(cfg.BufAddr) + uint64(max)*uint64(cfg.SlotSize); end > uint64(m.Size()) {
		return nil, fmt.Errorf("netsim: batch endpoint %q: %d slots of %d bytes at %#x exceed graft memory",
			name, max, cfg.SlotSize, cfg.BufAddr)
	}
	if end := uint64(cfg.LenBase) + uint64(max)*4; end > uint64(m.Size()) {
		return nil, fmt.Errorf("netsim: batch endpoint %q: length table outside graft memory", name)
	}
	if cfg.HasVerdicts {
		if end := uint64(cfg.VerdictBase) + uint64(max)*4; end > uint64(m.Size()) {
			return nil, fmt.Errorf("netsim: batch endpoint %q: verdict table outside graft memory", name)
		}
	}

	ep, err := d.Register(name, g, cfg.SingleEntry, cfg.BufAddr)
	if err != nil {
		return nil, err
	}
	batchCall := tech.ResolveDirect(g, cfg.Entry)
	args := make([]uint32, 1)
	ep.maxBatch = int(max)
	ep.hasVerdicts = cfg.HasVerdicts
	ep.batchMarshal = func(slot uint32, p Packet) {
		n := uint32(len(p))
		if n > cfg.SlotSize {
			n = cfg.SlotSize
		}
		m.WriteAt(cfg.BufAddr+slot*cfg.SlotSize, p[:n])
		m.St32U(cfg.LenBase+slot*4, uint32(len(p)))
		if cfg.HasVerdicts {
			m.St32U(cfg.VerdictBase+slot*4, cfg.VerdictNone)
		}
	}
	ep.batchCall = func(n uint32) (uint32, error) {
		args[0] = n
		return batchCall(args)
	}
	ep.verdictAt = func(slot uint32) (uint32, bool) {
		v := m.Ld32U(cfg.VerdictBase + slot*4)
		return v, v != cfg.VerdictNone
	}
	return ep, nil
}

// DeliverBatch offers frames to the endpoints in one pass, crossing the
// technology boundary once per chunk of up to 32 pending frames per
// batch-capable endpoint. The returned slice has one entry per frame:
// the claiming endpoint or nil, identical to per-frame Deliver calls.
func (d *Demux) DeliverBatch(frames []Packet) []*Endpoint {
	out := make([]*Endpoint, len(frames))
	pending := make([]int, 0, len(frames))
	for i, p := range frames {
		d.stats.Frames++
		if len(d.ports) > 0 && p.IsUDPv4() {
			if ep, ok := d.ports[p.DstPort()]; ok {
				ep.Matched++
				d.stats.Delivered++
				out[i] = ep
				continue
			}
		}
		pending = append(pending, i)
	}
	for _, ep := range d.endpoints {
		if len(pending) == 0 {
			break
		}
		if ep.batchCall == nil {
			pending = d.offerSingly(ep, frames, pending, out)
			continue
		}
		pending = d.offerBatch(ep, frames, pending, out)
	}
	d.stats.Unclaimed += uint64(len(pending))
	return out
}

// offerSingly runs one plain endpoint over the pending frames exactly as
// Deliver would, returning the frames it did not claim.
func (d *Demux) offerSingly(ep *Endpoint, frames []Packet, pending []int, out []*Endpoint) []int {
	still := pending[:0]
	for _, i := range pending {
		ep.marshal(frames[i])
		d.stats.FilterRuns++
		ok, err := ep.filter(uint32(len(frames[i])))
		switch {
		case err != nil:
			ep.Errors++
			ep.LastErr = err
			still = append(still, i)
		case ok:
			ep.Matched++
			d.stats.Delivered++
			out[i] = ep
		default:
			still = append(still, i)
		}
	}
	return still
}

// offerBatch drives one batch-capable endpoint over the pending frames,
// chunking to the endpoint's per-crossing cap and applying the sentinel
// trap-attribution protocol. It returns the frames the endpoint rejected
// (including trapped-on frames), still pending for later endpoints.
func (d *Demux) offerBatch(ep *Endpoint, frames []Packet, pending []int, out []*Endpoint) []int {
	var still []int
	accept := func(i int) {
		ep.Matched++
		d.stats.Delivered++
		out[i] = ep
	}
	for len(pending) > 0 {
		k := len(pending)
		if k > ep.maxBatch {
			k = ep.maxBatch
		}
		chunk := pending[:k]
		for slot, i := range chunk {
			ep.batchMarshal(uint32(slot), frames[i])
		}
		d.batchStats.Calls++
		d.batchStats.Frames += uint64(k)
		mask, err := ep.batchCall(uint32(k))
		if err == nil {
			d.stats.FilterRuns += uint64(k)
			for slot, i := range chunk {
				if mask>>uint(slot)&1 != 0 {
					accept(i)
				} else {
					still = append(still, i)
				}
			}
			pending = pending[k:]
			continue
		}
		d.batchStats.Traps++
		if !ep.hasVerdicts {
			// Mask-only class: the mask died with the trap, so no verdict
			// survives. Refilter the chunk through the single-frame entry;
			// a deterministic trap re-fires on exactly the frame that
			// caused it.
			for _, i := range chunk {
				ep.marshal(frames[i])
				d.stats.FilterRuns++
				d.batchStats.Refiltered++
				ok, ferr := ep.filter(uint32(len(frames[i])))
				switch {
				case ferr != nil:
					ep.Errors++
					ep.LastErr = ferr
					still = append(still, i)
				case ok:
					accept(i)
				default:
					still = append(still, i)
				}
			}
			pending = pending[k:]
			continue
		}
		// Sentinel protocol: committed verdicts are honored; the first
		// sentinel slot is the in-flight frame, charged the trap and
		// treated as a rejection; everything after it re-batches.
		resolved := k
		for slot, i := range chunk {
			v, committed := ep.verdictAt(uint32(slot))
			d.stats.FilterRuns++
			if !committed {
				ep.Errors++
				ep.LastErr = err
				still = append(still, i)
				resolved = slot + 1
				break
			}
			if v != 0 {
				accept(i)
			} else {
				still = append(still, i)
			}
		}
		if resolved == k && ep.LastErr != err {
			// Every verdict committed before the trap fired (e.g. fuel
			// exhausted on the way out): no frame was in flight, but the
			// endpoint still surfaced the trap.
			ep.Errors++
			ep.LastErr = err
		}
		pending = pending[resolved:]
	}
	return still
}

// BatchStats returns a copy of the batched-path counters.
func (d *Demux) BatchStats() BatchStats { return d.batchStats }
