package netsim

import (
	"fmt"
	"testing"

	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

func TestRegisterPortDelivery(t *testing.T) {
	d := NewDemux()
	ep1, err := d.RegisterPort("udp:7", 7)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := d.RegisterPort("udp:9", 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RegisterPort("dup", 7); err == nil {
		t.Fatal("duplicate port accepted")
	}
	fallthroughEp := d.RegisterFunc("tcp:any", func(p Packet) bool {
		return len(p) >= MinFrameSize && p[OffIPProto] == ProtoTCP
	})

	cases := []struct {
		h    Header
		want *Endpoint
	}{
		{Header{EthType: EthTypeIPv4, Proto: ProtoUDP, DstPort: 7}, ep1},
		{Header{EthType: EthTypeIPv4, Proto: ProtoUDP, DstPort: 9}, ep2},
		{Header{EthType: EthTypeIPv4, Proto: ProtoUDP, DstPort: 11}, nil},
		{Header{EthType: EthTypeIPv4, Proto: ProtoTCP, DstPort: 7}, fallthroughEp}, // TCP to 7 is not UDP
		{Header{EthType: 0x0806, Proto: ProtoUDP, DstPort: 7}, nil},                // non-IP never port-matches
	}
	for i, c := range cases {
		got, err := d.Deliver(Build(c.h, uint32(i)))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("case %d: delivered to %v, want %v", i, got, c.want)
		}
	}
	if ep1.Matched != 1 || ep2.Matched != 1 {
		t.Fatalf("matched %d/%d", ep1.Matched, ep2.Matched)
	}
}

// TestMPFDispatchMatchesLinearScan: the merged port table must agree with
// an equivalent set of per-endpoint graft filters on every frame.
func TestMPFDispatchMatchesLinearScan(t *testing.T) {
	const nEndpoints = 16
	trace, err := GenerateTrace(TraceConfig{
		Packets: 2000, MatchPort: 5001, MatchFrac: 0.3, PayloadLen: 16, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Linear scan: one graft filter per endpoint.
	linear := NewDemux()
	filterSrc := tech.Source{Name: "pf", GEL: `
func filter(len) {
	if (len < 42) { return 0; }
	if (ld8(0x2000 + 12) * 256 + ld8(0x2000 + 13) != 0x0800) { return 0; }
	if (ld8(0x2000 + 23) != 17) { return 0; }
	if (ld8(0x2000 + 36) * 256 + ld8(0x2000 + 37) != ld32(0x1000)) { return 0; }
	return 1;
}`}
	for i := 0; i < nEndpoints; i++ {
		m := mem.New(1 << 16)
		g, err := tech.Load(tech.NativeUnsafe, filterSrc, m, tech.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m.St32U(0x1000, uint32(5000+i))
		if _, err := linear.Register(fmt.Sprintf("udp:%d", 5000+i), g, "filter", 0x2000); err != nil {
			t.Fatal(err)
		}
	}

	// Merged: one port-table entry per endpoint.
	merged := NewDemux()
	for i := 0; i < nEndpoints; i++ {
		if _, err := merged.RegisterPort(fmt.Sprintf("udp:%d", 5000+i), uint16(5000+i)); err != nil {
			t.Fatal(err)
		}
	}

	for i, p := range trace {
		le, err := linear.Deliver(p)
		if err != nil {
			t.Fatal(err)
		}
		me, err := merged.Deliver(p)
		if err != nil {
			t.Fatal(err)
		}
		if (le == nil) != (me == nil) {
			t.Fatalf("frame %d: linear=%v merged=%v", i, le, me)
		}
		if le != nil && le.Name != me.Name {
			t.Fatalf("frame %d: linear->%s merged->%s", i, le.Name, me.Name)
		}
	}
	// The merged path must do far fewer filter runs.
	if merged.Stats().FilterRuns != 0 {
		t.Fatalf("merged dispatch ran %d filters", merged.Stats().FilterRuns)
	}
	if linear.Stats().FilterRuns < uint64(len(trace)) {
		t.Fatalf("linear scan ran only %d filters", linear.Stats().FilterRuns)
	}
}
