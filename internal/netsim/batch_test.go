package netsim_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"graftlab/internal/grafts"
	"graftlab/internal/mem"
	"graftlab/internal/netsim"
	"graftlab/internal/tech"
)

const matchPort = 5001

// trapFilter is the packet filter with a content-triggered trap: a frame
// whose first payload byte is 171 (0xAB) divides by zero. The trigger is
// a pure function of the frame bytes, so it fires identically on the
// single-frame and batched paths — which is what lets the differential
// test exercise mid-batch traps.
var trapFilter = tech.Source{
	Name: "pktfilter-trap",
	GEL: `
func filter(len) {
	var b = 0;
	if (len < 43) { return 0; }
	b = ld8(0x2000 + 42);
	if (b == 171) { return len / (b - 171); }
	if (ld8(0x2000 + 12) * 256 + ld8(0x2000 + 13) != 0x0800) { return 0; }
	if (ld8(0x2000 + 23) != 17) { return 0; }
	if (ld8(0x2000 + 36) * 256 + ld8(0x2000 + 37) != ld32(0x1000)) { return 0; }
	return 1;
}

func filter_batch(n) {
	var port = ld32(0x1000);
	var mask = 0;
	var bit = 1;
	var base = 0x2000;
	var lena = 0x1400;
	var va = 0x1800;
	var end = 0;
	var ok = 0;
	var b = 0;
	if (n > 32) { n = 32; }
	end = 0x1400 + n * 4;
	while (lena < end) {
		ok = 0;
		if (ld32(lena) >= 43) {
			b = ld8(base + 42);
			if (b == 171) { ok = ld32(lena) / (b - 171); }
			else if (ld8(base + 12) * 256 + ld8(base + 13) != 0x0800) { ok = 0; }
			else if (ld8(base + 23) != 17) { ok = 0; }
			else if (ld8(base + 36) * 256 + ld8(base + 37) != port) { ok = 0; }
			else { ok = 1; }
		}
		st32(va, ok);
		if (ok == 1) { mask = mask | bit; }
		bit = bit << 1;
		base = base + 512;
		lena = lena + 4;
		va = va + 4;
	}
	return mask;
}
`,
}

func buildFrame(port uint16, proto uint8, tag uint32) netsim.Packet {
	return netsim.Build(netsim.Header{
		EthType: netsim.EthTypeIPv4, Proto: proto,
		DstPort: port, PayloadLen: 64,
	}, tag)
}

// diffTrace builds a deterministic mixed trace: matching frames, frames
// for the port-table endpoint, frames for a downstream endpoint, TCP and
// runt frames, and trap-trigger frames on both matching and background
// traffic.
func diffTrace(n int) []netsim.Packet {
	out := make([]netsim.Packet, 0, n)
	for i := 0; i < n; i++ {
		var p netsim.Packet
		switch i % 9 {
		case 0, 3:
			p = buildFrame(matchPort, netsim.ProtoUDP, uint32(i))
		case 1:
			p = buildFrame(7000, netsim.ProtoUDP, uint32(i)) // port table
		case 2:
			p = buildFrame(6000, netsim.ProtoUDP, uint32(i)) // downstream
		case 4:
			p = buildFrame(80, netsim.ProtoTCP, uint32(i))
		case 5:
			// Runt: shorter than the filter's 43-byte floor.
			p = netsim.Build(netsim.Header{EthType: netsim.EthTypeIPv4, Proto: netsim.ProtoUDP, DstPort: matchPort}, uint32(i))
		default:
			p = buildFrame(uint16(10000+i), netsim.ProtoUDP, uint32(i))
		}
		if i%13 == 0 && len(p) > netsim.OffPayload {
			p[netsim.OffPayload] = 171 // trap trigger
		}
		out = append(out, p)
	}
	return out
}

// diffDemux builds one demultiplexer of the shape the differential test
// compares: a port-table endpoint, the graft filter under test, and a
// downstream host-function endpoint that sees only the frames the graft
// rejected. batch selects RegisterBatch vs Register for the graft.
func diffDemux(t *testing.T, src tech.Source, id tech.ID, opts tech.Options, batch, verdicts bool) *netsim.Demux {
	t.Helper()
	m := mem.New(grafts.PFMemSize)
	grafts.ConfigurePacketFilter(m, matchPort)
	g, err := tech.Load(id, src, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	d := netsim.NewDemux()
	if _, err := d.RegisterPort("port-7000", 7000); err != nil {
		t.Fatal(err)
	}
	if batch {
		cfg := grafts.PacketFilterBatchConfig(id)
		cfg.HasVerdicts = verdicts
		if _, err := d.RegisterBatch("graft", g, cfg); err != nil {
			t.Fatal(err)
		}
	} else {
		if _, err := d.Register("graft", g, "filter", grafts.PFBufAddr); err != nil {
			t.Fatal(err)
		}
	}
	d.RegisterFunc("downstream", func(p netsim.Packet) bool {
		return p.IsUDPv4() && p.DstPort() == 6000
	})
	return d
}

type demuxOutcome struct {
	names []string
	stats netsim.DemuxStats
	eps   map[string][2]uint64 // name -> {Matched, Errors}
}

func runSingle(d *netsim.Demux, trace []netsim.Packet) demuxOutcome {
	o := demuxOutcome{eps: map[string][2]uint64{}}
	for _, p := range trace {
		ep, _ := d.Deliver(p)
		o.names = append(o.names, epName(ep))
	}
	o.stats = d.Stats()
	return o
}

func runBatched(d *netsim.Demux, trace []netsim.Packet, chunk int) demuxOutcome {
	o := demuxOutcome{eps: map[string][2]uint64{}}
	for off := 0; off < len(trace); off += chunk {
		end := off + chunk
		if end > len(trace) {
			end = len(trace)
		}
		for _, ep := range d.DeliverBatch(trace[off:end]) {
			o.names = append(o.names, epName(ep))
		}
	}
	o.stats = d.Stats()
	return o
}

func epName(ep *netsim.Endpoint) string {
	if ep == nil {
		return ""
	}
	return ep.Name
}

func compareOutcomes(t *testing.T, label string, want, got demuxOutcome) {
	t.Helper()
	if want.stats != got.stats {
		t.Errorf("%s: stats diverge: single %+v, batched %+v", label, want.stats, got.stats)
	}
	if len(want.names) != len(got.names) {
		t.Fatalf("%s: %d vs %d assignments", label, len(want.names), len(got.names))
	}
	for i := range want.names {
		if want.names[i] != got.names[i] {
			t.Errorf("%s: frame %d assigned to %q single, %q batched", label, i, want.names[i], got.names[i])
		}
	}
}

// TestDeliverBatchMatchesDeliver is the differential batching property:
// over a mixed trace with mid-batch traps, DeliverBatch must produce
// byte-identical endpoint assignments and DemuxStats as N single-frame
// Deliver calls — at every chunk size, including 1 and ragged tails, and
// under both the verdict-table and the mask-only trap protocols.
func TestDeliverBatchMatchesDeliver(t *testing.T) {
	trace := diffTrace(117) // deliberately not a multiple of any chunk size below
	single := diffDemux(t, trapFilter, tech.Bytecode, tech.Options{}, false, false)
	want := runSingle(single, trace)
	if want.stats.Delivered == 0 || want.stats.Unclaimed == 0 {
		t.Fatalf("degenerate trace: %+v", want.stats)
	}
	trapped := wantErrors(single)
	if trapped == 0 {
		t.Fatal("trace produced no filter traps; the mid-batch trap property is untested")
	}

	for _, verdicts := range []bool{true, false} {
		for _, chunk := range []int{1, 3, 8, 32, 33, 117, 200} {
			label := fmt.Sprintf("verdicts=%v/chunk=%d", verdicts, chunk)
			d := diffDemux(t, trapFilter, tech.Bytecode, tech.Options{}, true, verdicts)
			got := runBatched(d, trace, chunk)
			compareOutcomes(t, label, want, got)
			if e := wantErrors(d); e != trapped {
				t.Errorf("%s: %d filter errors, single path had %d", label, e, trapped)
			}
		}
	}

	// The batched path must actually have batched: chunk 32 over 117
	// frames with one batch endpoint is far fewer crossings than frames.
	d := diffDemux(t, trapFilter, tech.Bytecode, tech.Options{}, true, true)
	runBatched(d, trace, 32)
	bs := d.BatchStats()
	if bs.Calls == 0 || bs.Frames == 0 || bs.Calls >= bs.Frames {
		t.Fatalf("batched run did not batch: %+v", bs)
	}
	if bs.Traps == 0 {
		t.Fatalf("trap trace produced no batch traps: %+v", bs)
	}
}

// wantErrors sums filter errors across a demux by re-deriving them from
// delivered stats: the graft endpoint is the only one that traps, so its
// Errors counter is the number of trap-trigger frames it saw.
func wantErrors(d *netsim.Demux) uint64 {
	var total uint64
	for _, ep := range d.Endpoints() {
		total += ep.Errors
	}
	return total
}

// TestBatchMatrixAllClasses runs the real packet filter under every
// technology class in tech.All (plus the baseline bytecode VM) through
// both delivery paths and requires agreement with each other and with
// the hand-written reference filter. This is the fourth graft column's
// netsim-side matrix: the batched protocol is not a bytecode-only trick.
func TestBatchMatrixAllClasses(t *testing.T) {
	trace := diffTrace(90)
	ref := grafts.ReferencePacketFilter(matchPort)
	var wantMatched uint64
	for _, p := range trace {
		if ref(p) {
			wantMatched++
		}
	}
	if wantMatched == 0 {
		t.Fatal("degenerate trace")
	}

	type cell struct {
		name string
		id   tech.ID
		opts tech.Options
	}
	cells := []cell{{name: "bytecode-baseline", id: tech.Bytecode, opts: tech.Options{VM: tech.VMBaseline}}}
	for _, id := range tech.All {
		cells = append(cells, cell{name: string(id), id: id})
	}
	for _, c := range cells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			single := diffDemux(t, grafts.PacketFilter, c.id, c.opts, false, false)
			want := runSingle(single, trace)
			batched := diffDemux(t, grafts.PacketFilter, c.id, c.opts, true, c.id != tech.Domain)
			got := runBatched(batched, trace, 32)
			compareOutcomes(t, c.name, want, got)
			var matched uint64
			for _, ep := range batched.Endpoints() {
				if ep.Name == "graft" {
					matched = ep.Matched
				}
			}
			if matched != wantMatched {
				t.Fatalf("graft matched %d frames, reference %d", matched, wantMatched)
			}
		})
	}
}

// TestBatchTrapAttributionFaultPlan pins the sentinel protocol against
// the access-scheduled fault injector: failing the Nth policy-level
// access mid-batch must drop exactly the in-flight frame (charged one
// error, everything else keeps its verdict), and the injected trap must
// surface identically across engines — the access sequence is a property
// of the program, not the policy.
func TestBatchTrapAttributionFaultPlan(t *testing.T) {
	frames := diffTrace(24)
	engines := []struct {
		name string
		id   tech.ID
		opts tech.Options
	}{
		{"native-unsafe", tech.NativeUnsafe, tech.Options{}},
		{"native-safe", tech.NativeSafe, tech.Options{}},
		{"sfi", tech.SFI, tech.Options{}},
		{"bytecode-opt", tech.Bytecode, tech.Options{VM: tech.VMOpt}},
		{"bytecode-baseline", tech.Bytecode, tech.Options{VM: tech.VMBaseline}},
		{"aot", tech.AOT, tech.Options{}},
	}

	run := func(id tech.ID, opts tech.Options, plan *mem.FaultPlan) (demuxOutcome, *netsim.Endpoint) {
		m := mem.New(grafts.PFMemSize)
		grafts.ConfigurePacketFilter(m, matchPort)
		m.Arm(plan)
		g, err := tech.Load(id, grafts.PacketFilter, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		d := netsim.NewDemux()
		ep, err := d.RegisterBatch("graft", g, grafts.PacketFilterBatchConfig(id))
		if err != nil {
			t.Fatal(err)
		}
		o := demuxOutcome{eps: map[string][2]uint64{}}
		for _, got := range d.DeliverBatch(frames) {
			o.names = append(o.names, epName(got))
		}
		o.stats = d.Stats()
		return o, ep
	}

	// Pass 1: count the accesses of a clean batched run.
	counter := &mem.FaultPlan{}
	base, baseEp := run(tech.Bytecode, tech.Options{}, counter)
	total := counter.Accesses()
	if total == 0 || baseEp.Errors != 0 {
		t.Fatalf("clean run: %d accesses, %d errors", total, baseEp.Errors)
	}

	// Pass 2: inject at the first access, mid-run, and the last access.
	for _, k := range []uint64{1, total / 2, total} {
		k := k
		t.Run(fmt.Sprintf("access-%d", k), func(t *testing.T) {
			var ref demuxOutcome
			var refKind mem.TrapKind
			for i, e := range engines {
				o, ep := run(e.id, e.opts, &mem.FaultPlan{FailOn: k})
				if ep.Errors != 1 {
					t.Fatalf("%s: %d errors, want exactly 1 (the in-flight frame)", e.name, ep.Errors)
				}
				var trap *mem.Trap
				if !errors.As(ep.LastErr, &trap) {
					t.Fatalf("%s: LastErr %v is not a trap", e.name, ep.LastErr)
				}
				if trap.Kind != mem.TrapOOBLoad && trap.Kind != mem.TrapOOBStore {
					t.Fatalf("%s: trap kind %v, want an injected OOB kind", e.name, trap.Kind)
				}
				// Exactly the in-flight frame is dropped: at most one frame
				// differs from the clean run, and only toward rejection.
				diffs := 0
				for j := range base.names {
					if o.names[j] != base.names[j] {
						diffs++
						if o.names[j] != "" {
							t.Fatalf("%s: frame %d gained an endpoint under fault injection", e.name, j)
						}
					}
				}
				if diffs > 1 {
					t.Fatalf("%s: fault at access %d changed %d frames, want at most the in-flight one", e.name, k, diffs)
				}
				if i == 0 {
					ref, refKind = o, trap.Kind
					continue
				}
				if trap.Kind != refKind {
					t.Fatalf("%s: trap kind %v, %s had %v", e.name, trap.Kind, engines[0].name, refKind)
				}
				for j := range ref.names {
					if o.names[j] != ref.names[j] {
						t.Fatalf("%s: frame %d assigned %q, %s assigned %q", e.name, j, o.names[j], engines[0].name, ref.names[j])
					}
				}
			}
		})
	}
}

// TestBatchFuelCliffKeepsRestOfBatch drives the metered engines into a
// mid-batch fuel cliff: the crossing traps, the frames with committed
// verdicts keep them, the in-flight frame is charged, and the tail is
// re-batched under a fresh budget until every frame has an outcome. The
// three engines that meter the same instruction stream must agree
// exactly.
func TestBatchFuelCliffKeepsRestOfBatch(t *testing.T) {
	frames := diffTrace(24)
	engines := []struct {
		name string
		id   tech.ID
		opts tech.Options
	}{
		{"bytecode-opt", tech.Bytecode, tech.Options{VM: tech.VMOpt}},
		{"bytecode-baseline", tech.Bytecode, tech.Options{VM: tech.VMBaseline}},
		{"aot", tech.AOT, tech.Options{}},
	}

	run := func(id tech.ID, opts tech.Options) (demuxOutcome, *netsim.Endpoint, netsim.BatchStats) {
		m := mem.New(grafts.PFMemSize)
		grafts.ConfigurePacketFilter(m, matchPort)
		g, err := tech.Load(id, grafts.PacketFilter, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		d := netsim.NewDemux()
		ep, err := d.RegisterBatch("graft", g, grafts.PacketFilterBatchConfig(id))
		if err != nil {
			t.Fatal(err)
		}
		o := demuxOutcome{eps: map[string][2]uint64{}}
		for _, got := range d.DeliverBatch(frames) {
			o.names = append(o.names, epName(got))
		}
		o.stats = d.Stats()
		return o, ep, d.BatchStats()
	}

	clean, cleanEp, _ := run(tech.Bytecode, tech.Options{})
	if cleanEp.Errors != 0 {
		t.Fatalf("clean run trapped: %d", cleanEp.Errors)
	}

	// Find the smallest budget that completes the whole delivery without
	// a trap, then run at half of it: the crossing is then guaranteed to
	// hit the cliff mid-batch.
	lo, hi := int64(1), int64(1<<20)
	for lo < hi {
		mid := (lo + hi) / 2
		_, ep, _ := run(tech.Bytecode, tech.Options{Fuel: mid})
		if ep.Errors == 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	budget := lo / 2
	if budget == 0 {
		t.Fatalf("fuel cliff %d too low to probe", lo)
	}

	var ref demuxOutcome
	var refErrors uint64
	for i, e := range engines {
		opts := e.opts
		opts.Fuel = budget
		o, ep, bs := run(e.id, opts)
		if ep.Errors == 0 {
			t.Fatalf("%s: budget %d produced no fuel trap", e.name, budget)
		}
		var trap *mem.Trap
		if !errors.As(ep.LastErr, &trap) || trap.Kind != mem.TrapFuel {
			t.Fatalf("%s: LastErr %v, want a fuel trap", e.name, ep.LastErr)
		}
		if bs.Traps == 0 {
			t.Fatalf("%s: no batch traps recorded: %+v", e.name, bs)
		}
		// Rest of the batch intact: no frame gains an endpoint, and every
		// frame the clean run rejected is still rejected — only accepted
		// frames can be downgraded, by being charged the trap in flight.
		for j := range clean.names {
			if o.names[j] != clean.names[j] && o.names[j] != "" {
				t.Fatalf("%s: frame %d reassigned %q -> %q under fuel pressure", e.name, j, clean.names[j], o.names[j])
			}
		}
		if got := o.stats.Delivered + ep.Errors; got < clean.stats.Delivered {
			t.Fatalf("%s: %d delivered + %d errors < %d clean deliveries: frames vanished",
				e.name, o.stats.Delivered, ep.Errors, clean.stats.Delivered)
		}
		if i == 0 {
			ref, refErrors = o, ep.Errors
			continue
		}
		if ep.Errors != refErrors {
			t.Fatalf("%s: %d errors, %s had %d — shared metering diverged", e.name, ep.Errors, engines[0].name, refErrors)
		}
		for j := range ref.names {
			if o.names[j] != ref.names[j] {
				t.Fatalf("%s: frame %d assigned %q, %s assigned %q", e.name, j, o.names[j], engines[0].name, ref.names[j])
			}
		}
	}
}

// TestStressConcurrentBatchDemux is the per-CPU-queue model under the
// race detector: W workers each check a pooled filter instance out,
// build a private demultiplexer over it, push a trace through the
// batched path, and verify the delivered count. The pool is the only
// shared object.
func TestStressConcurrentBatchDemux(t *testing.T) {
	trace := diffTrace(90)
	ref := grafts.ReferencePacketFilter(matchPort)
	var want uint64
	for _, p := range trace {
		if ref(p) {
			want++
		}
	}

	pool, err := tech.NewPool(tech.Bytecode, grafts.PacketFilter, tech.Options{}, tech.PoolConfig{
		MemSize: grafts.PFMemSize,
		Setup: func(m *mem.Memory) error {
			grafts.ConfigurePacketFilter(m, matchPort)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const workers = 8
	iters := 20
	if testing.Short() {
		iters = 4
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				inst, err := pool.Get()
				if err != nil {
					errCh <- err
					return
				}
				d := netsim.NewDemux()
				ep, err := d.RegisterBatch("graft", inst, grafts.PacketFilterBatchConfig(tech.Bytecode))
				if err != nil {
					errCh <- err
					return
				}
				d.DeliverBatch(trace)
				if ep.Matched != want || ep.Errors != 0 {
					errCh <- fmt.Errorf("worker matched %d (errors %d), want %d", ep.Matched, ep.Errors, want)
					return
				}
				pool.Put(inst)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
