package netsim

import (
	"fmt"

	"graftlab/internal/tech"
)

// FilterFunc decides whether an endpoint accepts a frame already
// marshaled into its graft memory; frameLen is the frame size in bytes.
type FilterFunc func(frameLen uint32) (bool, error)

// Endpoint is one registered consumer of the demultiplexer.
type Endpoint struct {
	Name    string
	filter  FilterFunc
	marshal func(p Packet)
	Matched uint64
	Errors  uint64
	// LastErr is the most recent filter trap charged to this endpoint.
	LastErr error

	// Batched-path hooks, set by RegisterBatch (see batch.go).
	batchMarshal func(slot uint32, p Packet)
	batchCall    func(n uint32) (uint32, error)
	verdictAt    func(slot uint32) (v uint32, committed bool)
	maxBatch     int
	hasVerdicts  bool
}

// DemuxStats counts demultiplexer activity.
type DemuxStats struct {
	Frames     uint64
	Delivered  uint64
	Unclaimed  uint64
	FilterRuns uint64
}

// Demux is the packet demultiplexer: each arriving frame is offered to
// every endpoint's filter in registration order until one claims it — the
// structure of the packet-filter systems the paper cites [MOGUL87,
// MCCAN93]. A filter that traps is charged an error and treated as a
// rejection; a broken filter loses its own packets, never the kernel.
//
// With many endpoints the linear scan is the bottleneck, which is the
// problem MPF [YUHARA94] solved by merging structurally identical
// filters into one dispatch step. RegisterPort is that idea here: an
// endpoint that declares "IPv4 UDP to port P" joins a port table the
// demultiplexer consults with one lookup, and only frames no port
// endpoint claims fall through to the general filter scan.
type Demux struct {
	endpoints  []*Endpoint
	ports      map[uint16]*Endpoint
	stats      DemuxStats
	batchStats BatchStats
}

// NewDemux builds an empty demultiplexer.
func NewDemux() *Demux { return &Demux{} }

// Register adds an endpoint whose filter is the graft g. The frame is
// marshaled to bufAddr in g's memory with its length invoked as the
// single argument of entry.
func (d *Demux) Register(name string, g tech.Graft, entry string, bufAddr uint32) (*Endpoint, error) {
	m := g.Memory()
	if bufAddr >= m.Size() {
		return nil, fmt.Errorf("netsim: buffer address %#x outside graft memory", bufAddr)
	}
	capacity := m.Size() - bufAddr
	call := tech.ResolveDirect(g, entry)
	args := make([]uint32, 1)
	ep := &Endpoint{
		Name: name,
		marshal: func(p Packet) {
			n := uint32(len(p))
			if n > capacity {
				n = capacity
			}
			m.WriteAt(bufAddr, p[:n])
		},
		filter: func(frameLen uint32) (bool, error) {
			args[0] = frameLen
			v, err := call(args)
			return v != 0, err
		},
	}
	d.endpoints = append(d.endpoints, ep)
	return ep, nil
}

// RegisterFunc adds an endpoint backed by a host function (the hand-
// written reference filter).
func (d *Demux) RegisterFunc(name string, fn func(p Packet) bool) *Endpoint {
	var current Packet
	ep := &Endpoint{
		Name:    name,
		marshal: func(p Packet) { current = p },
		filter: func(uint32) (bool, error) {
			return fn(current), nil
		},
	}
	d.endpoints = append(d.endpoints, ep)
	return ep
}

// RegisterPort adds an MPF-style merged endpoint: IPv4 UDP frames to
// port are claimed with a single map lookup instead of a filter run.
func (d *Demux) RegisterPort(name string, port uint16) (*Endpoint, error) {
	if d.ports == nil {
		d.ports = make(map[uint16]*Endpoint)
	}
	if _, dup := d.ports[port]; dup {
		return nil, fmt.Errorf("netsim: port %d already registered", port)
	}
	ep := &Endpoint{Name: name}
	d.ports[port] = ep
	return ep, nil
}

// Deliver offers one frame to the endpoints; it returns the claiming
// endpoint or nil. Port-table endpoints are consulted first (one lookup
// for any number of them), then the general filters in order.
func (d *Demux) Deliver(p Packet) (*Endpoint, error) {
	d.stats.Frames++
	if len(d.ports) > 0 && p.IsUDPv4() {
		if ep, ok := d.ports[p.DstPort()]; ok {
			ep.Matched++
			d.stats.Delivered++
			return ep, nil
		}
	}
	for _, ep := range d.endpoints {
		ep.marshal(p)
		d.stats.FilterRuns++
		ok, err := ep.filter(uint32(len(p)))
		if err != nil {
			ep.Errors++
			ep.LastErr = err
			continue
		}
		if ok {
			ep.Matched++
			d.stats.Delivered++
			return ep, nil
		}
	}
	d.stats.Unclaimed++
	return nil, nil
}

// Stats returns a copy of the counters.
func (d *Demux) Stats() DemuxStats { return d.stats }

// Endpoints returns the registered filter endpoints in offer order
// (port-table endpoints are not included).
func (d *Demux) Endpoints() []*Endpoint { return d.endpoints }
