// Package netsim is the network substrate for the packet-filter extension
// domain the paper's related work motivates (§2: Mogul's packet filter,
// the BSD Packet Filter, MPF): a simulated link delivering Ethernet/IPv4/
// UDP-shaped frames to a demultiplexer whose per-endpoint filters are
// grafts. Packet filters were the canonical in-kernel extension of the
// era — "often implemented in a simple interpreted language" — and this
// package lets the same technology comparison run on that workload.
package netsim

import (
	"encoding/binary"
	"fmt"

	"graftlab/internal/workload"
)

// Frame field offsets, standard Ethernet II + IPv4 + UDP. Multi-byte
// fields are big-endian (network order), so filters assemble them from
// byte loads exactly as BPF programs do.
const (
	OffEthDst    = 0  // 6 bytes
	OffEthSrc    = 6  // 6 bytes
	OffEthType   = 12 // u16: 0x0800 = IPv4
	OffIPVerIHL  = 14 // 0x45 for a 20-byte header
	OffIPLen     = 16 // u16 total length
	OffIPProto   = 23 // u8: 17 = UDP, 6 = TCP
	OffIPSrc     = 26 // u32 source address
	OffIPDst     = 30 // u32 destination address
	OffSrcPort   = 34 // u16
	OffDstPort   = 36 // u16
	OffUDPLen    = 38 // u16
	OffPayload   = 42
	MinFrameSize = OffPayload

	EthTypeIPv4 = 0x0800
	ProtoUDP    = 17
	ProtoTCP    = 6
)

// Packet is one frame on the simulated wire.
type Packet []byte

// Header describes a frame to build.
type Header struct {
	EthType    uint16
	Proto      uint8
	SrcIP      uint32
	DstIP      uint32
	SrcPort    uint16
	DstPort    uint16
	PayloadLen int
}

// Build constructs a frame from h with a deterministic payload.
func Build(h Header, tag uint32) Packet {
	p := make(Packet, MinFrameSize+h.PayloadLen)
	// MACs are cosmetic; derive from the IPs.
	binary.BigEndian.PutUint32(p[OffEthDst+2:], h.DstIP)
	binary.BigEndian.PutUint32(p[OffEthSrc+2:], h.SrcIP)
	binary.BigEndian.PutUint16(p[OffEthType:], h.EthType)
	p[OffIPVerIHL] = 0x45
	binary.BigEndian.PutUint16(p[OffIPLen:], uint16(len(p)-14))
	p[OffIPProto] = h.Proto
	binary.BigEndian.PutUint32(p[OffIPSrc:], h.SrcIP)
	binary.BigEndian.PutUint32(p[OffIPDst:], h.DstIP)
	binary.BigEndian.PutUint16(p[OffSrcPort:], h.SrcPort)
	binary.BigEndian.PutUint16(p[OffDstPort:], h.DstPort)
	binary.BigEndian.PutUint16(p[OffUDPLen:], uint16(8+h.PayloadLen))
	workload.FillPattern(p[OffPayload:], tag)
	return p
}

// DstPort extracts the destination port of an IPv4 UDP/TCP frame, or 0.
func (p Packet) DstPort() uint16 {
	if len(p) < MinFrameSize {
		return 0
	}
	return binary.BigEndian.Uint16(p[OffDstPort:])
}

// IsUDPv4 reports whether p is an IPv4 UDP frame.
func (p Packet) IsUDPv4() bool {
	return len(p) >= MinFrameSize &&
		binary.BigEndian.Uint16(p[OffEthType:]) == EthTypeIPv4 &&
		p[OffIPProto] == ProtoUDP
}

// TraceConfig shapes a generated packet trace.
type TraceConfig struct {
	Packets int
	// MatchPort is the port the benchmark endpoint listens on.
	MatchPort uint16
	// MatchFrac is the fraction of packets addressed to MatchPort.
	MatchFrac float64
	// PayloadLen is the payload size of every frame.
	PayloadLen int
	Seed       uint64
}

// DefaultTrace mirrors a demultiplexing benchmark: mostly background
// traffic, a tenth of it for the endpoint under test.
func DefaultTrace(n int) TraceConfig {
	return TraceConfig{
		Packets:    n,
		MatchPort:  5001,
		MatchFrac:  0.10,
		PayloadLen: 64,
		Seed:       1996,
	}
}

// GenerateTrace builds the packet sequence. Non-matching traffic is a mix
// of other UDP ports, TCP segments, and non-IP frames, so a filter must
// actually check every branch.
func GenerateTrace(cfg TraceConfig) ([]Packet, error) {
	if cfg.Packets <= 0 {
		return nil, fmt.Errorf("netsim: trace needs at least one packet")
	}
	rng := workload.NewRNG(cfg.Seed)
	out := make([]Packet, 0, cfg.Packets)
	for i := 0; i < cfg.Packets; i++ {
		h := Header{
			EthType:    EthTypeIPv4,
			Proto:      ProtoUDP,
			SrcIP:      0x0A000000 | rng.Uint32n(1<<16),
			DstIP:      0x0A000001,
			SrcPort:    uint16(1024 + rng.Uint32n(60000)),
			PayloadLen: cfg.PayloadLen,
		}
		switch {
		case rng.Float64() < cfg.MatchFrac:
			h.DstPort = cfg.MatchPort
		case rng.Float64() < 0.15:
			h.Proto = ProtoTCP
			h.DstPort = 80
		case rng.Float64() < 0.05:
			h.EthType = 0x0806 // ARP-ish: not IPv4
			h.DstPort = 0
		default:
			h.DstPort = uint16(1024 + rng.Uint32n(60000))
			if h.DstPort == cfg.MatchPort {
				h.DstPort++
			}
		}
		out = append(out, Build(h, uint32(i)))
	}
	return out, nil
}
