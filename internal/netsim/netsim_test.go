package netsim

import (
	"encoding/binary"
	"testing"
)

func TestBuildFrameLayout(t *testing.T) {
	p := Build(Header{
		EthType: EthTypeIPv4, Proto: ProtoUDP,
		SrcIP: 0x0A000002, DstIP: 0x0A000001,
		SrcPort: 1234, DstPort: 5001, PayloadLen: 16,
	}, 7)
	if len(p) != MinFrameSize+16 {
		t.Fatalf("len = %d", len(p))
	}
	if binary.BigEndian.Uint16(p[OffEthType:]) != EthTypeIPv4 {
		t.Error("ethertype wrong")
	}
	if p[OffIPVerIHL] != 0x45 || p[OffIPProto] != ProtoUDP {
		t.Error("IP header wrong")
	}
	if binary.BigEndian.Uint32(p[OffIPSrc:]) != 0x0A000002 {
		t.Error("src IP wrong")
	}
	if p.DstPort() != 5001 || !p.IsUDPv4() {
		t.Error("accessors wrong")
	}
	if binary.BigEndian.Uint16(p[OffUDPLen:]) != 8+16 {
		t.Error("UDP length wrong")
	}
}

func TestShortPacketAccessors(t *testing.T) {
	p := Packet{1, 2, 3}
	if p.DstPort() != 0 || p.IsUDPv4() {
		t.Error("short packet misclassified")
	}
}

func TestGenerateTraceComposition(t *testing.T) {
	cfg := TraceConfig{Packets: 5000, MatchPort: 5001, MatchFrac: 0.10, PayloadLen: 8, Seed: 1}
	trace, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 5000 {
		t.Fatalf("trace len = %d", len(trace))
	}
	var matched, udp, nonIP int
	for _, p := range trace {
		if p.IsUDPv4() {
			udp++
			if p.DstPort() == 5001 {
				matched++
			}
		}
		if binary.BigEndian.Uint16(p[OffEthType:]) != EthTypeIPv4 {
			nonIP++
		}
	}
	frac := float64(matched) / 5000
	if frac < 0.07 || frac > 0.13 {
		t.Errorf("match fraction %.3f, want ≈0.10", frac)
	}
	if nonIP == 0 {
		t.Error("trace has no non-IP frames; filters never exercise the ethertype branch")
	}
	if udp == len(trace) {
		t.Error("trace has no TCP frames; filters never exercise the proto branch")
	}
	// Determinism.
	trace2, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trace {
		if string(trace[i]) != string(trace2[i]) {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestGenerateTraceValidation(t *testing.T) {
	if _, err := GenerateTrace(TraceConfig{}); err == nil {
		t.Fatal("zero-packet trace accepted")
	}
}

func TestDemuxOrdering(t *testing.T) {
	d := NewDemux()
	first := d.RegisterFunc("first", func(p Packet) bool { return true })
	second := d.RegisterFunc("second", func(p Packet) bool { return true })
	p := Build(Header{EthType: EthTypeIPv4, Proto: ProtoUDP, DstPort: 1}, 0)
	ep, err := d.Deliver(p)
	if err != nil {
		t.Fatal(err)
	}
	if ep != first {
		t.Fatal("registration order not respected")
	}
	if second.Matched != 0 {
		t.Fatal("second endpoint should not have run to completion")
	}
}
