package netsim_test

import (
	"bytes"
	"testing"

	"graftlab/internal/grafts"
	"graftlab/internal/mem"
	"graftlab/internal/netsim"
	"graftlab/internal/tech"
)

// framesFromFuzz carves the fuzzer's byte soup into frames: each frame is
// prefixed by one length byte scaled ×3, so the fuzzer reaches runts,
// exact-minimum frames, and frames larger than a batch slot (512 bytes)
// with single-byte mutations.
func framesFromFuzz(data []byte) []netsim.Packet {
	var out []netsim.Packet
	for len(data) > 0 && len(out) < 256 {
		n := int(data[0]) * 3
		data = data[1:]
		if n > len(data) {
			n = len(data)
		}
		out = append(out, netsim.Packet(data[:n]))
		data = data[n:]
	}
	return out
}

// FuzzDeliver throws random frame sets at the demultiplexer through both
// delivery paths and requires: no panic, identical endpoint assignments
// and DemuxStats, and the conservation invariants every delivery must
// keep (delivered + unclaimed = frames, delivered = sum of matches).
// The filter under test is the real packet-filter graft on the bytecode
// class — header parsing over attacker-controlled bytes is exactly the
// surface the original packet-filter papers hardened.
func FuzzDeliver(f *testing.F) {
	match := netsim.Build(netsim.Header{EthType: netsim.EthTypeIPv4, Proto: netsim.ProtoUDP, DstPort: matchPort, PayloadLen: 9}, 1)
	port := netsim.Build(netsim.Header{EthType: netsim.EthTypeIPv4, Proto: netsim.ProtoUDP, DstPort: 7000, PayloadLen: 9}, 2)
	tcp := netsim.Build(netsim.Header{EthType: netsim.EthTypeIPv4, Proto: netsim.ProtoTCP, DstPort: 80, PayloadLen: 9}, 3)
	seed := func(frames ...netsim.Packet) []byte {
		var b bytes.Buffer
		for _, p := range frames {
			b.WriteByte(byte(len(p) / 3))
			b.Write(p[:len(p)/3*3])
		}
		return b.Bytes()
	}
	f.Add(seed(match, tcp, port), uint8(2))
	f.Add(seed(match, match, match, match), uint8(3))
	f.Add(seed(tcp), uint8(0))
	f.Add([]byte{0, 0, 1, 42, 255}, uint8(33))

	newDemux := func(batch bool) *netsim.Demux {
		m := mem.New(grafts.PFMemSize)
		grafts.ConfigurePacketFilter(m, matchPort)
		g, err := tech.Load(tech.Bytecode, grafts.PacketFilter, m, tech.Options{})
		if err != nil {
			f.Fatal(err)
		}
		d := netsim.NewDemux()
		if _, err := d.RegisterPort("port-7000", 7000); err != nil {
			f.Fatal(err)
		}
		if batch {
			if _, err := d.RegisterBatch("graft", g, grafts.PacketFilterBatchConfig(tech.Bytecode)); err != nil {
				f.Fatal(err)
			}
		} else {
			if _, err := d.Register("graft", g, "filter", grafts.PFBufAddr); err != nil {
				f.Fatal(err)
			}
		}
		d.RegisterFunc("tcp", func(p netsim.Packet) bool {
			return len(p) >= netsim.MinFrameSize && p[netsim.OffIPProto] == netsim.ProtoTCP
		})
		return d
	}

	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		frames := framesFromFuzz(data)
		if len(frames) == 0 {
			return
		}
		single := newDemux(false)
		var singleNames []string
		for _, p := range frames {
			ep, err := single.Deliver(p)
			if err != nil {
				t.Fatalf("Deliver returned a demux-level error: %v", err)
			}
			singleNames = append(singleNames, epName(ep))
		}

		batched := newDemux(true)
		step := int(chunk)
		if step == 0 {
			step = 1
		}
		var batchNames []string
		for off := 0; off < len(frames); off += step {
			end := off + step
			if end > len(frames) {
				end = len(frames)
			}
			for _, ep := range batched.DeliverBatch(frames[off:end]) {
				batchNames = append(batchNames, epName(ep))
			}
		}

		for i := range singleNames {
			if singleNames[i] != batchNames[i] {
				t.Fatalf("frame %d: single path %q, batched path %q", i, singleNames[i], batchNames[i])
			}
		}
		ss, bs := single.Stats(), batched.Stats()
		if ss != bs {
			t.Fatalf("stats diverge: single %+v, batched %+v", ss, bs)
		}
		if bs.Frames != uint64(len(frames)) || bs.Delivered+bs.Unclaimed != bs.Frames {
			t.Fatalf("conservation broken: %+v over %d frames", bs, len(frames))
		}
		var matched uint64
		for _, ep := range batched.Endpoints() {
			matched += ep.Matched
			if ep.Errors != 0 {
				t.Fatalf("pure filter reported %d errors on endpoint %s", ep.Errors, ep.Name)
			}
		}
		// Port-table matches also count toward Delivered but are not in
		// Endpoints(); recover them from the delta.
		if matched > bs.Delivered {
			t.Fatalf("endpoint matches %d exceed delivered %d", matched, bs.Delivered)
		}
	})
}
