package netsim

import (
	"testing"

	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

// A minimal GEL endpoint filter: accept frames longer than 50 bytes.
var lenFilter = tech.Source{
	Name: "len-filter",
	GEL:  `func filter(len) { return len > 50; }`,
}

func TestRegisterAndDeliverWithGraft(t *testing.T) {
	m := mem.New(1 << 12)
	g, err := tech.Load(tech.NativeUnsafe, lenFilter, m, tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDemux()
	ep, err := d.Register("long-frames", g, "filter", 256)
	if err != nil {
		t.Fatal(err)
	}

	short := Build(Header{EthType: EthTypeIPv4, Proto: ProtoUDP, DstPort: 1, PayloadLen: 0}, 0)
	long := Build(Header{EthType: EthTypeIPv4, Proto: ProtoUDP, DstPort: 1, PayloadLen: 64}, 0)

	if got, err := d.Deliver(short); err != nil || got != nil {
		t.Fatalf("short frame: %v, %v", got, err)
	}
	if got, err := d.Deliver(long); err != nil || got != ep {
		t.Fatalf("long frame: %v, %v", got, err)
	}
	st := d.Stats()
	if st.Frames != 2 || st.Delivered != 1 || st.Unclaimed != 1 || st.FilterRuns != 2 {
		t.Fatalf("stats %+v", st)
	}
	if ep.Matched != 1 {
		t.Fatalf("matched = %d", ep.Matched)
	}
}

func TestRegisterRejectsBufferOutsideMemory(t *testing.T) {
	m := mem.New(1 << 12)
	g, err := tech.Load(tech.NativeUnsafe, lenFilter, m, tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDemux()
	if _, err := d.Register("x", g, "filter", 1<<12); err == nil {
		t.Fatal("buffer at memory size accepted")
	}
}

func TestRegisterTruncatesOversizedFrames(t *testing.T) {
	// Frame larger than the window after bufAddr: marshal truncates
	// rather than panicking; the filter still sees the real length.
	m := mem.New(1 << 12)
	g, err := tech.Load(tech.NativeUnsafe, lenFilter, m, tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDemux()
	if _, err := d.Register("tight", g, "filter", (1<<12)-8); err != nil {
		t.Fatal(err)
	}
	big := Build(Header{EthType: EthTypeIPv4, Proto: ProtoUDP, DstPort: 1, PayloadLen: 512}, 0)
	if _, err := d.Deliver(big); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultTraceShape(t *testing.T) {
	cfg := DefaultTrace(100)
	if cfg.Packets != 100 || cfg.MatchPort == 0 || cfg.MatchFrac <= 0 {
		t.Fatalf("cfg %+v", cfg)
	}
	trace, err := GenerateTrace(cfg)
	if err != nil || len(trace) != 100 {
		t.Fatalf("trace %d, %v", len(trace), err)
	}
}
