package bench

import (
	"encoding/json"
	"testing"
	"time"

	"graftlab/internal/telemetry"
)

// TestEncodeRoundTrip pins the DurationsNote convention: every duration in
// an encoded report is a plain integer nanosecond count, and the new
// tail-latency fields survive the trip.
func TestEncodeRoundTrip(t *testing.T) {
	r := &Report{
		Evict: &EvictResult{
			FaultTime: 17 * time.Millisecond,
			Rows: []EvictRow{{
				Tech: "compiled-unsafe",
				Per:  1500 * time.Nanosecond,
				P50:  1400 * time.Nanosecond,
				P95:  2100 * time.Nanosecond,
				P99:  2500 * time.Nanosecond,
			}},
		},
		Telemetry: []telemetry.GraftSnapshot{{
			Graft: "page-evict", Tech: "compiled-unsafe",
			Invocations: 42, LatencyP50: time.Microsecond,
		}},
	}
	data, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("Encode output is not valid JSON: %v", err)
	}
	row := m["table2"].(map[string]any)["Rows"].([]any)[0].(map[string]any)
	for field, want := range map[string]float64{
		"Per": 1500, "p50": 1400, "p95": 2100, "p99": 2500,
	} {
		v, ok := row[field]
		if !ok {
			t.Fatalf("encoded row lacks %q: %v", field, row)
		}
		ns, ok := v.(float64) // json numbers decode as float64
		if !ok || ns != want {
			t.Errorf("%s = %v, want integer nanoseconds %v (%s)", field, v, want, DurationsNote)
		}
	}
	tel := m["telemetry"].([]any)[0].(map[string]any)
	if tel["invocations"].(float64) != 42 || tel["latency_p50"].(float64) != 1000 {
		t.Errorf("telemetry snapshot mangled: %v", tel)
	}
}
