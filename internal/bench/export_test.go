package bench

import (
	"encoding/json"
	"testing"
	"time"

	"graftlab/internal/telemetry"
)

// TestEncodeRoundTrip pins the DurationsNote convention: every duration in
// an encoded report is a plain integer nanosecond count, and the new
// tail-latency fields survive the trip.
func TestEncodeRoundTrip(t *testing.T) {
	r := &Report{
		Evict: &EvictResult{
			FaultTime: 17 * time.Millisecond,
			Rows: []EvictRow{{
				Tech: "compiled-unsafe",
				Per:  1500 * time.Nanosecond,
				P50:  1400 * time.Nanosecond,
				P95:  2100 * time.Nanosecond,
				P99:  2500 * time.Nanosecond,
			}},
		},
		Telemetry: []telemetry.GraftSnapshot{{
			Graft: "page-evict", Tech: "compiled-unsafe",
			Invocations: 42, LatencyP50: time.Microsecond,
		}},
		Scale: &ScaleResult{
			ServiceTime:  200 * time.Microsecond,
			WorkerCounts: []int{1, 2, 4},
			MaxProcs:     1,
			Rows: []ScaleRow{{
				Workload: "md5", Tech: "compiled-unsafe", PaperName: "C (unsafe, in-kernel)",
				OpsPerWorker: 256, Instances: 4,
				Cells: []ScaleCell{{
					Workers: 4, Ops: 1024, Throughput: 3500.5, Speedup: 3.9,
					P50: 210 * time.Microsecond,
					P95: 400 * time.Microsecond,
					P99: 800 * time.Microsecond,
				}},
			}},
		},
	}
	data, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("Encode output is not valid JSON: %v", err)
	}
	row := m["table2"].(map[string]any)["Rows"].([]any)[0].(map[string]any)
	for field, want := range map[string]float64{
		"Per": 1500, "p50": 1400, "p95": 2100, "p99": 2500,
	} {
		v, ok := row[field]
		if !ok {
			t.Fatalf("encoded row lacks %q: %v", field, row)
		}
		ns, ok := v.(float64) // json numbers decode as float64
		if !ok || ns != want {
			t.Errorf("%s = %v, want integer nanoseconds %v (%s)", field, v, want, DurationsNote)
		}
	}
	tel := m["telemetry"].([]any)[0].(map[string]any)
	if tel["invocations"].(float64) != 42 || tel["latency_p50"].(float64) != 1000 {
		t.Errorf("telemetry snapshot mangled: %v", tel)
	}

	// BENCH_scale.json schema: snake_case keys, integer-ns percentiles,
	// per-worker-count cells — what external plotting consumes.
	scale := m["scale"].(map[string]any)
	if scale["service_time"].(float64) != 200000 {
		t.Errorf("scale service_time = %v, want 200000 ns", scale["service_time"])
	}
	srow := scale["rows"].([]any)[0].(map[string]any)
	for _, key := range []string{"workload", "tech", "paper_name", "ops_per_worker", "instances", "cells"} {
		if _, ok := srow[key]; !ok {
			t.Fatalf("scale row lacks %q: %v", key, srow)
		}
	}
	cell := srow["cells"].([]any)[0].(map[string]any)
	for field, want := range map[string]float64{
		"workers": 4, "ops": 1024, "speedup": 3.9,
		"p50": 210000, "p95": 400000, "p99": 800000,
	} {
		if v, ok := cell[field].(float64); !ok || v != want {
			t.Errorf("scale cell %s = %v, want %v", field, cell[field], want)
		}
	}
	if cell["ops_per_sec"].(float64) != 3500.5 {
		t.Errorf("scale cell ops_per_sec = %v", cell["ops_per_sec"])
	}

	// A decoded report must reconstruct the same scale numbers — the
	// contract -check-against depends on.
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	cmp := CompareReports(r, &back, CompareOptions{Tolerance: 0.01})
	if regs := cmp.Regressions(); len(regs) != 0 || cmp.Compared() == 0 {
		t.Fatalf("round-tripped report does not compare clean: %d metrics, %v", cmp.Compared(), regs)
	}
}
