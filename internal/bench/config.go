// Package bench regenerates the paper's evaluation: Tables 1-6, Figure 1,
// and the two ablations its text discusses (§5.4 explicit NIL checks,
// §5.5 SFI read protection). Each experiment returns a typed result that
// the formatting layer renders in the paper's table shapes; cmd/graftbench
// is the CLI over this package.
package bench

import (
	"time"

	"graftlab/internal/disk"
	"graftlab/internal/tech"
)

// Config sizes the experiments. Paper scale is what §5 ran; Quick scale
// keeps CI fast while preserving every code path.
type Config struct {
	// Runs is the number of measurement repetitions per cell (paper: 30).
	Runs int
	// WarmupRuns is the number of discarded ramp-up repetitions executed
	// before the Runs measurements of every cell. The first runs of a
	// cold graft pay cache fills, branch-predictor training, and CPU
	// frequency ramp; counting them pollutes Min/P99 (and at Quick scale
	// even the mean). Defaults: 3 at paper scale, 1 at quick scale;
	// the runner clamps negatives to the scale's floor.
	WarmupRuns int
	// Seed fixes the pseudo-random inputs (skewed write streams, fill
	// patterns), so two runs of the same configuration measure identical
	// work — the reproducibility contract REPORT.md records.
	Seed int64
	// EvictIters is invocations per eviction-run (paper: 100,000).
	EvictIters int
	// MD5Bytes is the fingerprint input size (paper: 1 MB).
	MD5Bytes int
	// MD5ScriptBytes is the reduced input for the script class, whose
	// measurement is scaled linearly to MD5Bytes (the paper just waited
	// 50 minutes; we document the scaling instead).
	MD5ScriptBytes int
	// LDWrites is the logical-disk write count (paper: 262,144).
	LDWrites int
	// LDScriptWrites is the reduced count for the script class, scaled.
	LDScriptWrites int
	// HotListLen is the eviction hot-list length (paper: 64).
	HotListLen int
	// Frames is the resident-set size for the eviction benchmark.
	Frames int
	// SignalIters is the Table 1 iteration count (paper: 30 runs of 1000).
	SignalIters int
	// Exe is the executable used as the signal-measurement child; empty
	// disables Table 1's child-process measurement.
	Exe string
	// FaultPages is the lat_pagefault mapping size in pages.
	FaultPages int
	// DiskWriteBytes is the lmdd write size (paper used 8 MB-class runs).
	DiskWriteBytes int64
	// Geometry is the simulated disk.
	Geometry disk.Geometry
	// SimFaultTime overrides the simulated page-fault service time; zero
	// derives it from Geometry (seek + rotation + one-page transfer).
	SimFaultTime time.Duration
	// ScaleServiceTime is the simulated per-request device wait in the
	// E7 closed-loop scalability experiment: the I/O time a request's
	// graft decision is amortized against. Real wall time, so the
	// experiment keeps its shape on any host.
	ScaleServiceTime time.Duration
	// ScaleOps is E7's per-worker request count for the compiled classes
	// (slower classes run a reduced count, like the other tables).
	ScaleOps int
	// ScaleLDBlocks sizes the logical disk for E7's ldmap workload; it
	// must exceed the largest per-worker request count so the append log
	// never fills mid-measurement.
	ScaleLDBlocks int
	// VM selects the bytecode engine for every experiment's vm rows:
	// "opt" (default, the optimizing translator) or "baseline" (the
	// instruction-at-a-time reference interpreter).
	VM tech.VMMode
	// Telemetry records whether per-graft invocation metrics were enabled
	// during the run (graftbench -telemetry), so archived reports say
	// whether their numbers include the instrumentation overhead.
	Telemetry bool
}

// Default is the paper-scale configuration.
func Default() Config {
	return Config{
		Runs:           30,
		WarmupRuns:     3,
		Seed:           1996,
		EvictIters:     100000,
		MD5Bytes:       1 << 20,
		MD5ScriptBytes: 64 << 10,
		LDWrites:       262144,
		LDScriptWrites: 4096,
		HotListLen:     64,
		Frames:         256,
		SignalIters:    1000,
		FaultPages:     4096,
		DiskWriteBytes: 8 << 20,
		Geometry:       disk.DefaultGeometry(),

		ScaleServiceTime: 200 * time.Microsecond,
		ScaleOps:         256,
		ScaleLDBlocks:    16384,
	}
}

// Quick is the CI-scale configuration.
func Quick() Config {
	c := Default()
	c.Runs = 5
	c.WarmupRuns = 1
	c.EvictIters = 2000
	c.MD5Bytes = 256 << 10
	c.MD5ScriptBytes = 8 << 10
	c.LDWrites = 16384
	c.LDScriptWrites = 512
	c.SignalIters = 100
	c.FaultPages = 512
	c.DiskWriteBytes = 2 << 20
	c.ScaleOps = 64
	c.ScaleLDBlocks = 4096
	return c
}

// EffectiveWarmup is the warmup-run count the measurement helpers use:
// WarmupRuns when set, else 1, so a zero-value or old-schema Config still
// discards at least the coldest run. Use this, never the raw field.
func (c Config) EffectiveWarmup() int {
	if c.WarmupRuns > 0 {
		return c.WarmupRuns
	}
	return 1
}

// SimulatedFaultTime is the virtual cost of a disk-backed page fault under
// the configured geometry: seek + rotational latency + one block, the
// paper's Table 3 quantity for its model application ("the faulted data
// pages are scattered throughout the database").
func (c Config) SimulatedFaultTime() time.Duration {
	if c.SimFaultTime != 0 {
		return c.SimFaultTime
	}
	g := c.Geometry
	xfer := time.Duration(int64(g.BlockSize) * int64(time.Second) / g.TransferRate)
	return g.AvgSeek + g.HalfRotation + xfer
}
