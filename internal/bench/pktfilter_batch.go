package bench

import (
	"fmt"
	"time"

	"graftlab/internal/grafts"
	"graftlab/internal/mem"
	"graftlab/internal/netsim"
	"graftlab/internal/stats"
	"graftlab/internal/tech"
	"graftlab/internal/upcall"
)

// The batched packet-filter experiment measures what XDP-style receive
// batching buys per technology class: frames per second through a real
// demultiplexer when the boundary is crossed once per chunk of N frames
// instead of once per frame. Two boundaries are measured, because the
// answer differs by an order of magnitude between them:
//
//   - kernel rows: the graft runs in-kernel, where a crossing is a
//     direct call. Batching amortizes only per-invocation engine setup
//     (entry dispatch, register-frame init), worth a modest low
//     single-digit factor. That modest line IS the paper's thesis:
//     in-kernel extension crossings are already cheap.
//   - upcall rows: the same graft behind the protection-domain boundary
//     (the user-level filter configuration of [MOGUL87]). Here a
//     crossing costs two context-switch-shaped hops, and batching
//     amortizes it dramatically — severalfold to an order of magnitude,
//     exactly as it does for real user-space packet paths.

// PFBatchCell is one batch-size measurement of a row.
type PFBatchCell struct {
	Batch     int           `json:"batch"`
	PerPacket time.Duration `json:"per_packet_ns"`
	RelStd    float64       `json:"rel_std"`
	N         int           `json:"n,omitempty"`
	P50       time.Duration `json:"p50,omitempty"`
	P95       time.Duration `json:"p95,omitempty"`
	P99       time.Duration `json:"p99,omitempty"`
	// PacketsPerSec is the sustained demultiplexing rate at this batch size.
	PacketsPerSec float64 `json:"pkts_per_sec"`
	// Speedup is this cell's rate relative to the same row's batch=1 cell.
	Speedup float64 `json:"speedup"`
}

// PFBatchRow is one (technology, boundary) line of the experiment.
type PFBatchRow struct {
	Tech string `json:"tech"`
	// Boundary is "kernel" (in-kernel direct call) or "upcall"
	// (protection-domain crossing per batch).
	Boundary  string        `json:"boundary"`
	PaperName string        `json:"paper_name"`
	Cells     []PFBatchCell `json:"cells"`
}

// PFBatchResult is the pktfilter-batch experiment.
type PFBatchResult struct {
	Packets    int          `json:"packets"`
	BatchSizes []int        `json:"batch_sizes"`
	Rows       []PFBatchRow `json:"rows"`
}

// pfBatchSizes are the delivery batch sizes; a crossing still carries at
// most 32 frames (the mask width), so batch=128 is four crossings per
// delivery — amortizing the per-delivery setup further without widening
// the protocol.
var pfBatchSizes = []int{1, 8, 32, 128}

// pfBatchMinSample is the minimum wall time one measured run must cover.
// Sub-100µs samples are dominated by timer granularity and scheduler
// jitter; the measure loop repeats the trace until a run is at least
// this long, then divides by the packets actually delivered.
const pfBatchMinSample = 2 * time.Millisecond

// pfBatchUpcallTechs are the loadable classes measured behind the
// protection-domain boundary. Bytecode is the headline row: a loadable,
// verifiable, non-native class whose batched user-level filter beats its
// one-crossing-per-frame self by well over the 2× bar.
var pfBatchUpcallTechs = []tech.ID{tech.Bytecode, tech.CompiledUnsafe}

// RunPacketFilterBatch measures batched demultiplexing throughput per
// technology class and boundary over the standard fixed-seed trace.
func RunPacketFilterBatch(cfg Config) (*PFBatchResult, error) {
	nPackets := cfg.EvictIters / 10
	if nPackets < 200 {
		nPackets = 200
	}
	trace, err := netsim.GenerateTrace(netsim.DefaultTrace(nPackets))
	if err != nil {
		return nil, err
	}
	ref := grafts.ReferencePacketFilter(5001)

	res := &PFBatchResult{Packets: nPackets, BatchSizes: pfBatchSizes}

	measure := func(id tech.ID, boundary string, g tech.Graft, closer func(), packets []netsim.Packet, runs int) error {
		if closer != nil {
			defer closer()
		}
		grafts.ConfigurePacketFilter(g.Memory(), 5001)
		d := netsim.NewDemux()
		ep, err := d.RegisterBatch("bench", g, grafts.PacketFilterBatchConfig(id))
		if err != nil {
			return err
		}
		var want uint64
		for _, p := range packets {
			if ref(p) {
				want++
			}
		}
		row := PFBatchRow{Tech: string(id), Boundary: boundary, PaperName: tech.PaperName(id)}
		pass := func(batch int) {
			for off := 0; off < len(packets); off += batch {
				end := off + batch
				if end > len(packets) {
					end = len(packets)
				}
				d.DeliverBatch(packets[off:end])
			}
		}
		for _, batch := range pfBatchSizes {
			// Calibrate: one untimed pass sizes the timed sample so each
			// measurement covers at least pfBatchMinSample of work. A bare
			// trace pass over a fast in-kernel filter is ~10µs — pure timer
			// noise — so short traces are repeated until the sample is long
			// enough to trust.
			t0 := time.Now()
			pass(batch)
			iters := 1
			if dt := time.Since(t0); dt > 0 && dt < pfBatchMinSample {
				iters = int(pfBatchMinSample/dt) + 1
				if iters > 500 {
					iters = 500
				}
			}
			s, err := measureSeries(cfg.EffectiveWarmup(), runs, func() (time.Duration, error) {
				before := ep.Matched
				t0 := time.Now()
				for i := 0; i < iters; i++ {
					pass(batch)
				}
				elapsed := time.Since(t0)
				per := elapsed / time.Duration(len(packets)*iters)
				if ep.Matched-before != want*uint64(iters) || ep.Errors != 0 {
					return 0, fmt.Errorf("bench: %s/%s matched %d packets (errors %d), want %d",
						id, boundary, ep.Matched-before, ep.Errors, want*uint64(iters))
				}
				return per, nil
			})
			if err != nil {
				return err
			}
			cell := PFBatchCell{
				Batch:     batch,
				PerPacket: s.Mean, RelStd: s.RelStd, N: s.N,
				P50: s.P50, P95: s.P95, P99: s.P99,
			}
			if s.Mean > 0 {
				cell.PacketsPerSec = float64(time.Second) / float64(s.Mean)
			}
			if len(row.Cells) > 0 && s.Mean > 0 {
				cell.Speedup = float64(row.Cells[0].PerPacket) / float64(s.Mean)
			} else {
				cell.Speedup = 1
			}
			row.Cells = append(row.Cells, cell)
		}
		res.Rows = append(res.Rows, row)
		return nil
	}

	// Kernel-boundary rows: the full registry.
	for _, id := range tech.All {
		packets := trace
		runs := cfg.Runs
		switch id {
		case tech.Script:
			packets = trace[:min(len(trace), 200)]
			runs = min(cfg.Runs, 3)
		case tech.Bytecode, tech.Domain:
			runs = min(cfg.Runs, 10)
		}
		g, err := tech.Load(id, grafts.PacketFilter, mem.New(grafts.PFMemSize), tech.Options{VM: cfg.VM})
		if err != nil {
			return nil, fmt.Errorf("pktfilter-batch %s: %w", id, err)
		}
		if err := measure(id, "kernel", g, nil, packets, runs); err != nil {
			return nil, fmt.Errorf("pktfilter-batch %s: %w", id, err)
		}
	}

	// Upcall-boundary rows: the same filters behind a protection domain,
	// one domain crossing per batch instead of per frame.
	for _, id := range pfBatchUpcallTechs {
		inner, err := tech.Load(id, grafts.PacketFilter, mem.New(grafts.PFMemSize), tech.Options{VM: cfg.VM})
		if err != nil {
			return nil, fmt.Errorf("pktfilter-batch upcall %s: %w", id, err)
		}
		d := upcall.NewDomain(inner, 0)
		packets := trace[:min(len(trace), 2000)]
		if err := measure(id, "upcall", d, d.Close, packets, min(cfg.Runs, 5)); err != nil {
			return nil, fmt.Errorf("pktfilter-batch upcall %s: %w", id, err)
		}
	}
	return res, nil
}

// Table renders the experiment.
func (r *PFBatchResult) Table() *stats.Table {
	header := []string{"technology", "boundary"}
	for _, b := range r.BatchSizes {
		header = append(header, fmt.Sprintf("b=%d", b))
	}
	t := &stats.Table{
		Title:  fmt.Sprintf("Batched Packet Filter (%d-frame trace, pps by delivery batch size)", r.Packets),
		Header: header,
		Caption: "Frames/sec through the demultiplexer when the technology boundary is crossed\n" +
			"once per batch (up to 32 frames/crossing). In-kernel crossings are direct calls:\n" +
			"batching only amortizes per-invocation engine setup, a modest factor. Across the\n" +
			"upcall (protection-domain) boundary the same filters gain up to an order of\n" +
			"magnitude: batching pays in proportion to what a crossing costs, which is the\n" +
			"cheap-crossing thesis read off one table. (xN) = speedup over b=1.",
	}
	for _, row := range r.Rows {
		cells := []string{row.Tech, row.Boundary}
		for _, c := range row.Cells {
			cells = append(cells, fmt.Sprintf("%s/s (x%.2f)", stats.Count(c.PacketsPerSec), c.Speedup))
		}
		t.AddRow(cells...)
	}
	return t
}
