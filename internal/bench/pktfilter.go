package bench

import (
	"fmt"
	"time"

	"graftlab/internal/grafts"
	"graftlab/internal/mem"
	"graftlab/internal/netsim"
	"graftlab/internal/stats"
	"graftlab/internal/tech"
	"graftlab/internal/upcall"
)

// PFRow is one technology's line in the packet-filter experiment.
type PFRow struct {
	Tech      string
	PaperName string
	PerPacket time.Duration
	RelStd    float64
	// N is the measurement-run count behind this row (warmup excluded).
	N int `json:"n,omitempty"`
	// Tail percentiles across per-run per-packet means.
	P50        time.Duration `json:"p50,omitempty"`
	P95        time.Duration `json:"p95,omitempty"`
	P99        time.Duration `json:"p99,omitempty"`
	Normalized float64
	// PacketsPerSec is the demultiplexing rate one endpoint sustains.
	PacketsPerSec float64
}

// PFResult is the packet-filter experiment: not a numbered table in the
// paper, but the extension domain its related work leads with (§2's
// packet filters, "implemented in a simple interpreted language ... the
// performance of interpreted packet filters is close to that of compiled
// code" — a claim this experiment puts to the test across technology
// classes).
type PFResult struct {
	Packets int
	Rows    []PFRow
}

var pfBenchTechs = []tech.ID{
	tech.CompiledUnsafe, tech.Bytecode, tech.AOT, tech.CompiledSafe, tech.CompiledSFI,
	tech.Script, tech.NativeUnsafe, tech.Domain,
}

// RunPacketFilter measures per-packet filter cost per technology over the
// standard trace.
func RunPacketFilter(cfg Config) (*PFResult, error) {
	nPackets := cfg.EvictIters / 10
	if nPackets < 200 {
		nPackets = 200
	}
	trace, err := netsim.GenerateTrace(netsim.DefaultTrace(nPackets))
	if err != nil {
		return nil, err
	}
	ref := grafts.ReferencePacketFilter(5001)
	wantMatches := 0
	for _, p := range trace {
		if ref(p) {
			wantMatches++
		}
	}

	res := &PFResult{Packets: nPackets}
	var base time.Duration

	measure := func(name, paper string, g tech.Graft, closer func(), packets []netsim.Packet) error {
		if closer != nil {
			defer closer()
		}
		m := g.Memory()
		grafts.ConfigurePacketFilter(m, 5001)
		call := tech.ResolveDirect(g, "filter")
		args := make([]uint32, 1)
		want := 0
		for _, p := range packets {
			if ref(p) {
				want++
			}
		}
		s, err := measureSeries(cfg.EffectiveWarmup(), cfg.Runs, func() (time.Duration, error) {
			matches := 0
			t0 := time.Now()
			for _, p := range packets {
				m.WriteAt(grafts.PFBufAddr, p)
				args[0] = uint32(len(p))
				v, err := call(args)
				if err != nil {
					return 0, err
				}
				if v != 0 {
					matches++
				}
			}
			d := time.Since(t0) / time.Duration(len(packets))
			if matches != want {
				return 0, fmt.Errorf("bench: %s matched %d packets, want %d", name, matches, want)
			}
			return d, nil
		})
		if err != nil {
			return err
		}
		if base == 0 {
			base = s.Mean
		}
		row := PFRow{
			Tech: name, PaperName: paper,
			PerPacket: s.Mean, RelStd: s.RelStd, N: s.N,
			P50: s.P50, P95: s.P95, P99: s.P99,
			Normalized: float64(s.Mean) / float64(base),
		}
		if s.Mean > 0 {
			row.PacketsPerSec = float64(time.Second) / float64(s.Mean)
		}
		res.Rows = append(res.Rows, row)
		return nil
	}

	for _, id := range pfBenchTechs {
		packets := trace
		runs := cfg.Runs
		switch id {
		case tech.Script:
			packets = trace[:min(len(trace), 200)]
			runs = min(cfg.Runs, 3)
		case tech.Bytecode:
			runs = min(cfg.Runs, 10)
		}
		g, err := tech.Load(id, grafts.PacketFilter, mem.New(grafts.PFMemSize), tech.Options{VM: cfg.VM})
		if err != nil {
			return nil, fmt.Errorf("pktfilter %s: %w", id, err)
		}
		saved := cfg.Runs
		cfg.Runs = runs
		err = measure(string(id), tech.PaperName(id), g, nil, packets)
		cfg.Runs = saved
		if err != nil {
			return nil, fmt.Errorf("pktfilter %s: %w", id, err)
		}
	}

	// Upcall row: one crossing per packet — the configuration whose cost
	// motivated in-kernel packet filters in the first place [MOGUL87].
	inner, err := tech.Load(tech.CompiledUnsafe, grafts.PacketFilter, mem.New(grafts.PFMemSize), tech.Options{})
	if err != nil {
		return nil, err
	}
	d := upcall.NewDomain(inner, 0)
	saved := cfg.Runs
	cfg.Runs = min(cfg.Runs, 5)
	err = measure("upcall-server", "user-level packet filter", d, d.Close, trace[:min(len(trace), 2000)])
	cfg.Runs = saved
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the experiment.
func (r *PFResult) Table() *stats.Table {
	t := &stats.Table{
		Title:  fmt.Sprintf("Packet Filter (%d-frame trace, UDP port endpoint)", r.Packets),
		Header: []string{"technology", "stands in for", "per packet", "normalized", "pkts/sec"},
		Caption: "The §2 extension domain: a BPF-style demultiplexing filter. The paper notes\n" +
			"interpreted packet filters historically ran 'close to compiled code' because\n" +
			"their domain language was tiny; a general-purpose script class does not.",
	}
	for _, row := range r.Rows {
		t.AddRow(row.Tech, row.PaperName,
			fmt.Sprintf("%s(%.1f%%)", stats.FormatDuration(row.PerPacket), row.RelStd*100),
			stats.Ratio(row.Normalized),
			fmt.Sprintf("%.0f", row.PacketsPerSec))
	}
	return t
}
