package bench

import (
	"strings"
	"testing"
	"time"
)

// flatReport builds a report covering row-based, scalar, and concurrent
// experiments for exporter tests.
func flatReport() *Report {
	return &Report{
		GeneratedNote: "quick-scale",
		Host:          &HostInfo{GOOS: "linux", GOARCH: "amd64", NumCPU: 4, GoVersion: "go1.22"},
		Config:        func() *Config { c := Quick(); return &c }(),
		Signal:        &SignalResult{Crossing: 2 * time.Microsecond},
		MD5: &MD5Result{Bytes: 1 << 20, Rows: []MD5Row{
			{Tech: "compiled-unsafe", Total: 100 * time.Millisecond, RelStd: 0.02, N: 5,
				P50: 99 * time.Millisecond, P95: 104 * time.Millisecond, P99: 105 * time.Millisecond},
			{Tech: "script", Total: 40 * time.Second, RelStd: 0.40, N: 3},
		}},
		Scale: &ScaleResult{ServiceTime: 200 * time.Microsecond, Rows: []ScaleRow{{
			Workload: "md5", Tech: "compiled-unsafe",
			Cells: []ScaleCell{{Workers: 4, Throughput: 3500}},
		}}},
	}
}

func TestFlattenCells(t *testing.T) {
	cells := Flatten(flatReport(), 0)
	byKey := map[string]Cell{}
	for _, c := range cells {
		byKey[c.Experiment+"/"+c.Row+"/"+c.Metric] = c
	}
	quiet, ok := byKey["table5/compiled-unsafe/total_ns"]
	if !ok {
		t.Fatalf("missing table5 cell: %+v", cells)
	}
	if !quiet.Stable || quiet.N != 5 || quiet.Unit != "ns" || quiet.Value != 1e8 {
		t.Errorf("quiet cell wrong: %+v", quiet)
	}
	if quiet.P95 != float64(104*time.Millisecond) {
		t.Errorf("percentiles lost: %+v", quiet)
	}
	noisy := byKey["table5/script/total_ns"]
	if noisy.Stable {
		t.Errorf("CV 40%% cell flagged stable: %+v", noisy)
	}
	if c := byKey["table1//crossing_ns"]; c.Value != float64(2*time.Microsecond) {
		t.Errorf("scalar cell wrong: %+v", c)
	}
	sc := byKey["scale/md5/compiled-unsafe w=4/ops_per_sec"]
	if sc.Unit != "ops/s" || sc.Value != 3500 {
		t.Errorf("scale cell wrong: %+v", sc)
	}
}

func TestCSVShape(t *testing.T) {
	out := CSV(Flatten(flatReport(), 0))
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "experiment,row,metric,unit,value,n,cv,p50_ns,p95_ns,p99_ns,stable" {
		t.Fatalf("csv header: %q", lines[0])
	}
	if want := 1 + 4; len(lines) != want { // header + crossing + 2 md5 rows + 1 scale cell
		t.Fatalf("csv has %d lines, want %d:\n%s", len(lines), want, out)
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != 10 {
			t.Errorf("csv line has %d commas, want 10: %q", got, l)
		}
	}
	if !strings.Contains(out, "table5,script,total_ns,ns,") {
		t.Errorf("csv lacks script row:\n%s", out)
	}
	if !strings.Contains(out, ",false\n") {
		t.Error("csv lacks an unstable flag for the noisy cell")
	}
}

func TestGenerateReportMD(t *testing.T) {
	r := flatReport()
	md := GenerateReportMD(r, nil, ReportOptions{})
	for _, want := range []string{
		"# graftlab benchmark report",
		"**1 warmup**",      // quick-scale methodology echoed
		"**5 measurement**", // quick-scale runs
		"seed **1996**",     // reproducibility contract
		"Table 5: MD5 Fingerprinting",
		"NOISY", // the 40% CV script row is flagged
		"| compiled-unsafe | total_ns | 100ms | 2.0% | 5 |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("REPORT.md lacks %q:\n%s", want, md)
		}
	}
	if strings.Contains(md, "Regression gate") {
		t.Error("report without comparison has a gate section")
	}
}

func TestGenerateReportMDWithComparison(t *testing.T) {
	r := flatReport()
	base := flatReport()
	base.MD5.Rows[0].Total = 50 * time.Millisecond // current is 2x slower, CV 2% -> regression
	base.MD5.Rows = base.MD5.Rows[:1]              // script row absent from baseline -> skip
	cmp := CompareReports(base, r, CompareOptions{Tolerance: 0.30})
	md := GenerateReportMD(r, cmp, ReportOptions{
		BaselinePath: "BENCH_baseline.json", Tolerance: 0.30,
	})
	for _, want := range []string{
		"## Regression gate",
		"BENCH_baseline.json",
		"Cohen's d",
		"**regression**",
		"Not fully checked",
		"row absent from baseline",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("comparison REPORT.md lacks %q:\n%s", want, md)
		}
	}
}
