package bench

import (
	"fmt"
	"strings"
	"time"
)

// The suite exporter flattens a Report — whose per-experiment result
// types mirror the paper's table shapes — into a uniform cell matrix:
// one line per (experiment, row, metric) with the run count, coefficient
// of variation, tail percentiles, and a stability flag. results.csv is
// this matrix verbatim; REPORT.md (reportmd.go) renders it with the
// methodology header and effect-size verdicts.

// DefaultCVThreshold is the stability bar: a cell whose coefficient of
// variation exceeds it is flagged unstable in results.csv and REPORT.md,
// and should not be trusted for fine-grained comparisons. 15% is lax by
// laboratory standards but realistic for shared CI runners.
const DefaultCVThreshold = 0.15

// Cell is one measurement of the flattened suite matrix.
type Cell struct {
	Experiment string  `json:"experiment"`
	Row        string  `json:"row,omitempty"` // "" for experiment-level scalars
	Metric     string  `json:"metric"`
	Unit       string  `json:"unit"` // "ns", "ops/s", "bytes/s"
	Value      float64 `json:"value"`
	// N is the measurement-run count (warmup excluded); 0 when the
	// metric is a derived scalar without repeated runs.
	N  int     `json:"n,omitempty"`
	CV float64 `json:"cv"`
	// Tail percentiles in ns; zero when the metric doesn't record them.
	P50 float64 `json:"p50,omitempty"`
	P95 float64 `json:"p95,omitempty"`
	P99 float64 `json:"p99,omitempty"`
	// Stable is CV <= the flattening threshold.
	Stable bool `json:"stable"`
}

// Flatten turns a report into the uniform cell matrix. cvThreshold <= 0
// means DefaultCVThreshold.
func Flatten(r *Report, cvThreshold float64) []Cell {
	if cvThreshold <= 0 {
		cvThreshold = DefaultCVThreshold
	}
	var cells []Cell
	add := func(c Cell) {
		c.Stable = c.CV <= cvThreshold
		cells = append(cells, c)
	}
	durCell := func(exp, row, metric string, v time.Duration, cv float64, n int, p50, p95, p99 time.Duration) {
		add(Cell{
			Experiment: exp, Row: row, Metric: metric, Unit: "ns",
			Value: float64(v), CV: cv, N: n,
			P50: float64(p50), P95: float64(p95), P99: float64(p99),
		})
	}
	if s := r.Signal; s != nil {
		durCell("table1", "", "crossing_ns", s.Crossing, 0, 0, 0, 0, 0)
		if s.PerSignal > 0 {
			durCell("table1", "", "per_signal_ns", s.PerSignal, 0, 0, 0, 0, 0)
		}
	}
	if e := r.Evict; e != nil {
		for _, row := range e.Rows {
			durCell("table2", row.Tech, "per_eviction_ns", row.Per, row.RelStd, row.N, row.P50, row.P95, row.P99)
		}
	}
	if f := r.Fault; f != nil {
		durCell("table3", "", "measured_fault_ns", f.Measured, 0, 0, 0, 0, 0)
		durCell("table3", "", "simulated_fault_ns", f.Simulated, 0, 0, 0, 0, 0)
	}
	if d := r.Disk; d != nil {
		if d.MeasuredBW > 0 {
			add(Cell{Experiment: "table4", Metric: "measured_bw", Unit: "bytes/s", Value: float64(d.MeasuredBW)})
		}
		add(Cell{Experiment: "table4", Metric: "model_bw", Unit: "bytes/s", Value: float64(d.ModelBW)})
	}
	if m := r.MD5; m != nil {
		for _, row := range m.Rows {
			durCell("table5", row.Tech, "total_ns", row.Total, row.RelStd, row.N, row.P50, row.P95, row.P99)
		}
	}
	if l := r.LD; l != nil {
		for _, row := range l.Rows {
			durCell("table6", row.Tech, "total_ns", row.Total, row.RelStd, row.N, row.P50, row.P95, row.P99)
		}
	}
	if p := r.PacketFilter; p != nil {
		for _, row := range p.Rows {
			durCell("pktfilter", row.Tech, "per_packet_ns", row.PerPacket, row.RelStd, row.N, row.P50, row.P95, row.P99)
			add(Cell{
				Experiment: "pktfilter", Row: row.Tech, Metric: "pkts_per_sec",
				Unit: "ops/s", Value: row.PacketsPerSec, CV: row.RelStd, N: row.N,
			})
		}
	}
	if p := r.PFBatch; p != nil {
		for _, row := range p.Rows {
			for _, cl := range row.Cells {
				name := fmt.Sprintf("%s/%s b=%d", row.Tech, row.Boundary, cl.Batch)
				durCell("pktfilter-batch", name, "per_packet_ns", cl.PerPacket, cl.RelStd, cl.N, cl.P50, cl.P95, cl.P99)
				add(Cell{
					Experiment: "pktfilter-batch", Row: name, Metric: "pkts_per_sec",
					Unit: "ops/s", Value: cl.PacketsPerSec, CV: cl.RelStd, N: cl.N,
				})
			}
		}
	}
	if s := r.Swap; s != nil {
		for _, row := range s.Rows {
			for _, cl := range row.Cells {
				name := fmt.Sprintf("%s/%s", row.Tech, cl.Mode)
				durCell("swap-under-load", name, "per_op_ns", cl.PerOp, cl.RelStd, cl.N, cl.P50, cl.P95, cl.P99)
			}
		}
	}
	if s := r.Scale; s != nil {
		for _, row := range s.Rows {
			for _, cl := range row.Cells {
				add(Cell{
					Experiment: "scale",
					Row:        fmt.Sprintf("%s/%s w=%d", row.Workload, row.Tech, cl.Workers),
					Metric:     "ops_per_sec", Unit: "ops/s", Value: cl.Throughput,
					P50: float64(cl.P50), P95: float64(cl.P95), P99: float64(cl.P99),
				})
			}
		}
	}
	return cells
}

// CSV renders the cell matrix as results.csv: a stable header then one
// line per cell, durations in nanoseconds (DurationsNote).
func CSV(cells []Cell) string {
	var b strings.Builder
	b.WriteString("experiment,row,metric,unit,value,n,cv,p50_ns,p95_ns,p99_ns,stable\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "%s,%s,%s,%s,%g,%d,%.6g,%g,%g,%g,%t\n",
			c.Experiment, c.Row, c.Metric, c.Unit, c.Value, c.N, c.CV,
			c.P50, c.P95, c.P99, c.Stable)
	}
	return b.String()
}
