package bench

import (
	"fmt"
	"time"

	"graftlab/internal/disk"
	"graftlab/internal/grafts"
	"graftlab/internal/ld"
	"graftlab/internal/mem"
	"graftlab/internal/stats"
	"graftlab/internal/tech"
	"graftlab/internal/upcall"
	"graftlab/internal/vclock"
	"graftlab/internal/workload"
)

// LDRow is one technology's line in Table 6.
type LDRow struct {
	Tech      string
	PaperName string
	Total     time.Duration // wall time in the mapping bookkeeping
	RelStd    float64
	// N is the measurement-run count behind this row (warmup excluded).
	N int `json:"n,omitempty"`
	// Tail percentiles across the per-run totals (unscaled).
	P50        time.Duration `json:"p50,omitempty"`
	P95        time.Duration `json:"p95,omitempty"`
	P99        time.Duration `json:"p99,omitempty"`
	Normalized float64
	PerBlock   time.Duration // Total / writes: what each write must save
	Scaled     bool
}

// LDResult reproduces Table 6.
type LDResult struct {
	Writes int
	// SavedPerBlock is the virtual disk time the batching saves per
	// block (direct random write cost minus amortized sequential log
	// cost): the budget the bookkeeping must fit inside.
	SavedPerBlock time.Duration
	Rows          []LDRow
}

var ldTechs = []tech.ID{
	tech.CompiledUnsafe, tech.Bytecode, tech.AOT, tech.CompiledSafe, tech.CompiledSFI,
	tech.Script, tech.NativeUnsafe,
}

// RunLD regenerates Table 6: the time to handle the mapping bookkeeping
// for cfg.LDWrites writes of an 80/20-skewed stream.
func RunLD(cfg Config) (*LDResult, error) {
	res := &LDResult{Writes: cfg.LDWrites}
	res.SavedPerBlock = ldSavings(cfg)
	var base time.Duration

	measure := func(name, paper string, mapperFor func() (ld.Mapper, func(), error), writes int) error {
		s, err := measureSeries(cfg.EffectiveWarmup(), cfg.Runs, func() (time.Duration, error) {
			mapper, closer, err := mapperFor()
			if err != nil {
				return 0, err
			}
			if closer != nil {
				defer closer()
			}
			stream := workload.NewSkewed(cfg.Geometry.Blocks, uint64(cfg.Seed))
			t0 := time.Now()
			for i := 0; i < writes; i++ {
				if _, err := mapper.MapWrite(stream.Next()); err != nil {
					return 0, err
				}
			}
			return time.Since(t0), nil
		})
		if err != nil {
			return err
		}
		total := s.Mean
		scaled := false
		if writes != cfg.LDWrites {
			total = time.Duration(float64(total) * float64(cfg.LDWrites) / float64(writes))
			scaled = true
		}
		if base == 0 {
			base = total
		}
		res.Rows = append(res.Rows, LDRow{
			Tech: name, PaperName: paper,
			Total: total, RelStd: s.RelStd, N: s.N,
			P50: s.P50, P95: s.P95, P99: s.P99,
			Normalized: float64(total) / float64(base),
			PerBlock:   total / time.Duration(cfg.LDWrites),
			Scaled:     scaled,
		})
		return nil
	}

	for _, id := range ldTechs {
		id := id
		writes := cfg.LDWrites
		runs := cfg.Runs
		switch id {
		case tech.Script:
			writes = cfg.LDScriptWrites
			runs = min(cfg.Runs, 3)
		case tech.Bytecode:
			writes = max(cfg.LDWrites/8, 1024)
			runs = min(cfg.Runs, 5)
		}
		mk := func() (ld.Mapper, func(), error) {
			g, err := tech.Load(id, grafts.LDMap, mem.New(grafts.LDMemSize), tech.Options{VM: cfg.VM})
			if err != nil {
				return nil, nil, err
			}
			gm, err := grafts.NewGraftMapper(g, cfg.Geometry.Blocks)
			return gm, nil, err
		}
		saved := cfg.Runs
		cfg.Runs = runs
		err := measure(string(id), tech.PaperName(id), mk, writes)
		cfg.Runs = saved
		if err != nil {
			return nil, fmt.Errorf("ld %s: %w", id, err)
		}
	}

	// Upcall row: one domain crossing per block write, the paper's §5.6
	// user-level-server analysis.
	mkUp := func() (ld.Mapper, func(), error) {
		g, err := tech.Load(tech.CompiledUnsafe, grafts.LDMap, mem.New(grafts.LDMemSize), tech.Options{})
		if err != nil {
			return nil, nil, err
		}
		d := upcall.NewDomain(g, 0)
		gm, err := grafts.NewGraftMapper(d, cfg.Geometry.Blocks)
		return gm, d.Close, err
	}
	saved := cfg.Runs
	cfg.Runs = min(cfg.Runs, 5)
	err := measure("upcall-server", "C in user-level server", mkUp, max(cfg.LDWrites/8, 1024))
	cfg.Runs = saved
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ldSavings computes the virtual disk time batching saves per block:
// random single-block write cost minus the per-block share of a
// sequential 16-block segment flush.
func ldSavings(cfg Config) time.Duration {
	clock := &vclock.Clock{}
	dev := disk.New(cfg.Geometry, clock)
	stream := workload.NewSkewed(cfg.Geometry.Blocks, 7)
	const n = 512
	var direct time.Duration
	for i := 0; i < n; i++ {
		d, err := ld.DirectWrite(dev, stream.Next())
		if err != nil {
			return 0
		}
		direct += d
	}
	directPer := direct / n

	clock2 := &vclock.Clock{}
	dev2 := disk.New(cfg.Geometry, clock2)
	l := ld.New(dev2, ld.NewNativeMapper(cfg.Geometry.Blocks), false)
	stream2 := workload.NewSkewed(cfg.Geometry.Blocks, 7)
	for i := 0; i < n; i++ {
		if err := l.Write(stream2.Next()); err != nil {
			return 0
		}
	}
	ldPer := clock2.Now() / n
	if directPer <= ldPer {
		return 0
	}
	return directPer - ldPer
}

// Table renders the paper's Table 6 shape.
func (r *LDResult) Table() *stats.Table {
	t := &stats.Table{
		Title:  fmt.Sprintf("Table 6: Logical Disk (%d writes, 80/20 skew)", r.Writes),
		Header: []string{"technology", "stands in for", "raw", "normalized", "per block"},
		Caption: fmt.Sprintf(
			"Bookkeeping time for the logical->physical mapping. The graft breaks even\n"+
				"if per-block overhead < the %s/block the log layer saves on the modeled\n"+
				"disk. '~' rows measured at reduced size, scaled. Paper (Solaris): C\n"+
				"1.9s/1.0/7.2µs, Java 24.6s/13/94µs, Modula-3 2.9s/1.5/11.1µs, Omniware\n"+
				"2.2s/1.16/8.4µs per 262,144 writes.",
			stats.FormatDuration(r.SavedPerBlock)),
	}
	for _, row := range r.Rows {
		raw := fmt.Sprintf("%s(%.1f%%)", stats.FormatDuration(row.Total), row.RelStd*100)
		if row.Scaled {
			raw = "~" + raw
		}
		t.AddRow(row.Tech, row.PaperName, raw,
			stats.Ratio(row.Normalized),
			stats.FormatDuration(row.PerBlock))
	}
	return t
}
