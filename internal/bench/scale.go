package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"graftlab/internal/grafts"
	"graftlab/internal/kernel"
	"graftlab/internal/mem"
	"graftlab/internal/netsim"
	"graftlab/internal/stats"
	"graftlab/internal/tech"
	"graftlab/internal/workload"
)

// The scalability experiment (E7 / Table 7) measures what the paper's
// uniprocessor evaluation could not: how each technology behaves when one
// loaded graft is driven from many kernel threads at once. The model is a
// closed-loop server — each worker owns a pooled instance and services
// requests back to back, where one request is a graft invocation followed
// by a simulated device wait (ScaleServiceTime, the time the kernel would
// spend on the I/O the graft decision enabled). The wait is real wall
// time, so the experiment has the same shape on any host: cheap
// (compiled-class) invocations hide under overlapping waits and
// throughput scales with the worker count even on one core, while
// expensive (script-class) invocations serialize on the CPU and flatline
// — the multicore restatement of the paper's break-even argument.

// ScaleCell is one worker-count measurement of a (workload, technology)
// pair.
type ScaleCell struct {
	Workers int `json:"workers"`
	// Ops is the total request count across workers for this cell.
	Ops        int     `json:"ops"`
	Throughput float64 `json:"ops_per_sec"`
	// Speedup is Throughput relative to the 1-worker cell of the same row.
	Speedup float64 `json:"speedup"`
	// Per-request latency percentiles (invocation + simulated wait).
	P50 time.Duration `json:"p50"`
	P95 time.Duration `json:"p95"`
	P99 time.Duration `json:"p99"`
}

// ScaleRow is one (workload, technology) line in Table 7.
type ScaleRow struct {
	Workload     string      `json:"workload"`
	Tech         string      `json:"tech"`
	PaperName    string      `json:"paper_name"`
	OpsPerWorker int         `json:"ops_per_worker"`
	Instances    int         `json:"instances"` // pool instances ever created
	Cells        []ScaleCell `json:"cells"`
}

// ScaleResult reproduces Table 7.
type ScaleResult struct {
	ServiceTime  time.Duration `json:"service_time"`
	WorkerCounts []int         `json:"worker_counts"`
	MaxProcs     int           `json:"max_procs"`
	Rows         []ScaleRow    `json:"rows"`
}

// scaleTechs are Table 7's technologies: one representative per class
// plus the SFI variant, so the table shows the compiled/interpreted split
// under concurrency.
var scaleTechs = []tech.ID{
	tech.CompiledUnsafe, tech.CompiledSFI, tech.NativeUnsafe,
	tech.Bytecode, tech.AOT, tech.Script,
}

// scaleWorkerCounts is 1/2/4 plus GOMAXPROCS when it exceeds 4.
func scaleWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

// scaleOps scales the per-worker request count to the class, like the
// single-threaded tables do, so script rows finish in bounded time while
// per-request cost stays exact.
func scaleOps(cfg Config, id tech.ID) int {
	switch id {
	case tech.Script:
		return max(cfg.ScaleOps/8, 8)
	case tech.Bytecode:
		return max(cfg.ScaleOps/4, 16)
	}
	return cfg.ScaleOps
}

// scaleWorkload is one of the four request types: a pool configuration
// plus a binder that turns a checked-out instance into a request closure
// for one worker.
type scaleWorkload struct {
	name    string
	poolCfg func(cfg Config) tech.PoolConfig
	bind    func(cfg Config, id tech.ID, it *tech.Instance) (func() error, error)
}

// scaleEvictChain is the static LRU chain length baked into each
// eviction-workload instance; per-request cost is the hot-list search,
// not the chain walk, so a short chain suffices.
const scaleEvictChain = 64

// md5ChunkFor sizes the per-request fingerprint input to the class.
func md5ChunkFor(id tech.ID) int {
	switch id {
	case tech.Script:
		return 64
	case tech.Bytecode:
		return 1024
	}
	return 4096
}

var scaleWorkloads = []scaleWorkload{
	{
		// eviction: the Table 2 request — one hot-list search over a
		// baked-in LRU chain whose head is not hot.
		name: "eviction",
		poolCfg: func(cfg Config) tech.PoolConfig {
			return tech.PoolConfig{
				MemSize: grafts.PEMemSize,
				Setup: func(m *mem.Memory) error {
					hot := make([]kernel.PageID, cfg.HotListLen)
					for i := range hot {
						hot[i] = kernel.PageID(500000 + i)
					}
					grafts.NewHotList(m).Set(hot)
					for i := 0; i < scaleEvictChain; i++ {
						addr := uint32(grafts.PELRUNodeBase + kernel.LRUNodeSize*i)
						next := uint32(0)
						if i+1 < scaleEvictChain {
							next = addr + kernel.LRUNodeSize
						}
						m.St32U(addr, uint32(100+i))
						m.St32U(addr+4, next)
					}
					return nil
				},
			}
		},
		bind: func(cfg Config, id tech.ID, it *tech.Instance) (func() error, error) {
			call := tech.ResolveDirect(it.Graft, "evict")
			var argBuf [1]uint32
			return func() error {
				argBuf[0] = grafts.PELRUNodeBase
				v, err := call(argBuf[:])
				if err != nil {
					return err
				}
				if v != 100 {
					return fmt.Errorf("evict returned %d, want 100", v)
				}
				return nil
			}, nil
		},
	},
	{
		// md5: the Table 5 request — fingerprint one class-sized chunk
		// already resident in the instance's data window.
		name: "md5",
		poolCfg: func(cfg Config) tech.PoolConfig {
			return tech.PoolConfig{
				MemSize: grafts.MDMemSize,
				Setup: func(m *mem.Memory) error {
					grafts.SetupMD5Memory(m)
					chunk := make([]byte, md5ChunkFor(tech.CompiledUnsafe))
					workload.FillPattern(chunk, 7)
					m.WriteAt(grafts.MDBufAddr, chunk)
					return nil
				},
			}
		},
		bind: func(cfg Config, id tech.ID, it *tech.Instance) (func() error, error) {
			if _, err := it.Graft.Invoke("md5_init"); err != nil {
				return nil, err
			}
			call := tech.ResolveDirect(it.Graft, "md5_update")
			chunk := uint32(md5ChunkFor(id))
			var argBuf [2]uint32
			return func() error {
				argBuf[0] = grafts.MDBufAddr
				argBuf[1] = chunk
				_, err := call(argBuf[:])
				return err
			}, nil
		},
	},
	{
		// pktfilter: the fourth graft column's request — one batched
		// delivery of a 32-frame chunk through a private demultiplexer
		// (the per-CPU receive-queue model: each worker owns its own
		// demux over its own pooled filter instance).
		name: "pktfilter",
		poolCfg: func(cfg Config) tech.PoolConfig {
			return tech.PoolConfig{
				MemSize: grafts.PFMemSize,
				Setup: func(m *mem.Memory) error {
					grafts.ConfigurePacketFilter(m, 5001)
					return nil
				},
			}
		},
		bind: func(cfg Config, id tech.ID, it *tech.Instance) (func() error, error) {
			frames, err := netsim.GenerateTrace(netsim.TraceConfig{
				Packets: 32, MatchPort: 5001, MatchFrac: 0.25, PayloadLen: 64, Seed: 77,
			})
			if err != nil {
				return nil, err
			}
			ref := grafts.ReferencePacketFilter(5001)
			var want uint64
			for _, p := range frames {
				if ref(p) {
					want++
				}
			}
			d := netsim.NewDemux()
			ep, err := d.RegisterBatch("pf", it, grafts.PacketFilterBatchConfig(id))
			if err != nil {
				return nil, err
			}
			var reqs uint64
			return func() error {
				d.DeliverBatch(frames)
				reqs++
				if ep.Errors != 0 || ep.Matched != want*reqs {
					return fmt.Errorf("pktfilter matched %d (errors %d), want %d", ep.Matched, ep.Errors, want*reqs)
				}
				return nil
			}, nil
		},
	},
	{
		// ldmap: the Table 6 request — one logical-disk write translation.
		// Binding re-initializes the instance's map (NewGraftMapper), so
		// the append log never outgrows the device across cells.
		name: "ldmap",
		poolCfg: func(cfg Config) tech.PoolConfig {
			return tech.PoolConfig{MemSize: grafts.LDMemSize}
		},
		bind: func(cfg Config, id tech.ID, it *tech.Instance) (func() error, error) {
			blocks := uint32(cfg.ScaleLDBlocks)
			gm, err := grafts.NewGraftMapper(it.Graft, blocks)
			if err != nil {
				return nil, err
			}
			var i uint32
			return func() error {
				lb := i % blocks
				i++
				_, err := gm.MapWrite(lb)
				return err
			}, nil
		},
	},
}

// runScaleCell drives one (pool, workload, worker count) measurement.
// Each worker checks out an instance, binds its request closure, and the
// timed region starts only once every worker is ready — bind cost (map
// initialization, entry resolution) is setup, not service.
func runScaleCell(cfg Config, p *tech.Pool, w *scaleWorkload, id tech.ID, workers, ops int) (ScaleCell, error) {
	var (
		ready, done sync.WaitGroup
		start       = make(chan struct{})
		lats        = make([][]time.Duration, workers)
		errs        = make([]error, workers)
	)
	wait := cfg.ScaleServiceTime
	for wk := 0; wk < workers; wk++ {
		ready.Add(1)
		done.Add(1)
		go func(wk int) {
			defer done.Done()
			it, err := p.Get()
			if err != nil {
				errs[wk] = err
				ready.Done()
				return
			}
			defer p.Put(it)
			op, err := w.bind(cfg, id, it)
			if err != nil {
				errs[wk] = err
				ready.Done()
				return
			}
			samples := make([]time.Duration, 0, ops)
			ready.Done()
			<-start
			for i := 0; i < ops; i++ {
				t0 := time.Now()
				if err := op(); err != nil {
					errs[wk] = err
					return
				}
				if wait > 0 {
					time.Sleep(wait)
				}
				samples = append(samples, time.Since(t0))
			}
			lats[wk] = samples
		}(wk)
	}
	ready.Wait()
	t0 := time.Now()
	close(start)
	done.Wait()
	wall := time.Since(t0)

	for _, err := range errs {
		if err != nil {
			return ScaleCell{}, err
		}
	}
	var all []time.Duration
	for _, s := range lats {
		all = append(all, s...)
	}
	sum := stats.Summarize(all)
	total := workers * ops
	return ScaleCell{
		Workers:    workers,
		Ops:        total,
		Throughput: float64(total) / wall.Seconds(),
		P50:        sum.P50, P95: sum.P95, P99: sum.P99,
	}, nil
}

// RunScale regenerates Table 7.
func RunScale(cfg Config) (*ScaleResult, error) {
	res := &ScaleResult{
		ServiceTime:  cfg.ScaleServiceTime,
		WorkerCounts: scaleWorkerCounts(),
		MaxProcs:     runtime.GOMAXPROCS(0),
	}
	for wi := range scaleWorkloads {
		w := &scaleWorkloads[wi]
		for _, id := range scaleTechs {
			pool, err := tech.NewPool(id, scaleSourceFor(w.name), tech.Options{VM: cfg.VM}, w.poolCfg(cfg))
			if err != nil {
				return nil, fmt.Errorf("scale %s/%s: %w", w.name, id, err)
			}
			row := ScaleRow{
				Workload: w.name, Tech: string(id), PaperName: tech.PaperName(id),
				OpsPerWorker: scaleOps(cfg, id),
			}
			for _, workers := range res.WorkerCounts {
				cell, err := runScaleCell(cfg, pool, w, id, workers, row.OpsPerWorker)
				if err != nil {
					pool.Close()
					return nil, fmt.Errorf("scale %s/%s w=%d: %w", w.name, id, workers, err)
				}
				if len(row.Cells) == 0 {
					cell.Speedup = 1
				} else if base := row.Cells[0].Throughput; base > 0 {
					cell.Speedup = cell.Throughput / base
				}
				row.Cells = append(row.Cells, cell)
			}
			row.Instances = pool.Created()
			pool.Close()
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// scaleSourceFor maps a workload name to its graft source.
func scaleSourceFor(name string) tech.Source {
	switch name {
	case "eviction":
		return grafts.PageEvict
	case "md5":
		return grafts.MD5
	case "pktfilter":
		return grafts.PacketFilter
	default:
		return grafts.LDMap
	}
}

// Table renders Table 7.
func (r *ScaleResult) Table() *stats.Table {
	header := []string{"workload", "technology"}
	for _, w := range r.WorkerCounts {
		header = append(header, fmt.Sprintf("w=%d", w))
	}
	t := &stats.Table{
		Title:  "Table 7: Multicore Graft Throughput (closed loop)",
		Header: header,
		Caption: fmt.Sprintf(
			"Requests/sec for N workers sharing one tech.Pool; a request is one graft\n"+
				"invocation plus a %s simulated device wait (real wall time). Cheap\n"+
				"invocations hide under overlapping waits, so compiled-class throughput\n"+
				"scales with workers even on one core; script-class requests are compute-\n"+
				"bound and flatline — the paper's break-even argument, restated for\n"+
				"multicore. (xN) = speedup over 1 worker. GOMAXPROCS=%d on this host.",
			stats.FormatDuration(r.ServiceTime), r.MaxProcs),
	}
	for _, row := range r.Rows {
		cells := []string{row.Workload, row.Tech}
		for _, c := range row.Cells {
			cells = append(cells, fmt.Sprintf("%s/s (x%.1f)", stats.Count(c.Throughput), c.Speedup))
		}
		t.AddRow(cells...)
	}
	return t
}
