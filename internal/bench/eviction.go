package bench

import (
	"fmt"
	"time"

	"graftlab/internal/grafts"
	"graftlab/internal/kernel"
	"graftlab/internal/lmb"
	"graftlab/internal/mem"
	"graftlab/internal/stats"
	"graftlab/internal/tech"
	"graftlab/internal/upcall"
	"graftlab/internal/vclock"
)

// EvictRow is one technology's line in Table 2.
type EvictRow struct {
	Tech      string
	PaperName string
	Per       time.Duration // mean time per eviction search
	RelStd    float64
	// N is the measurement-run count behind this row (warmup excluded).
	N int `json:"n,omitempty"`
	// Tail latency across the per-run means (nearest rank over Runs
	// samples): the jitter a hook point sees, not just the center.
	P50        time.Duration `json:"p50"`
	P95        time.Duration `json:"p95"`
	P99        time.Duration `json:"p99"`
	Normalized float64       // Per / native-unsafe Per
	BreakEven  float64       // simulated (1990s, disk-backed) fault time / Per
	// BreakEvenModern divides this machine's measured minor-fault time
	// instead — the era comparison EXPERIMENTS.md discusses: against a
	// modern fault, even compiled grafts barely clear the paper's
	// once-per-781-invocations bar.
	BreakEvenModern float64
}

// EvictResult reproduces Table 2.
type EvictResult struct {
	HotListLen  int
	FaultTime   time.Duration // denominator of the 1990s break-even column
	ModernFault time.Duration // measured on this machine (0 if unavailable)
	Rows        []EvictRow
}

// evictHarness prepares the fixed scenario the paper times: a resident
// set whose LRU candidate is NOT on the application's 64-entry hot list,
// so each invocation performs exactly one full hot-list search — "the
// mean time required to search a 64 element hot list" (Table 2 caption).
type evictHarness struct {
	g        tech.Graft
	call     func(args []uint32) (uint32, error)
	argBuf   [1]uint32
	headAddr uint32
	wantPage uint32
	closer   func()
}

func newEvictHarness(cfg Config, id tech.ID, useUpcall bool, upcallLatency time.Duration) (*evictHarness, error) {
	m := mem.New(grafts.PEMemSize)
	g, err := tech.Load(id, grafts.PageEvict, m, tech.Options{VM: cfg.VM})
	if err != nil {
		return nil, err
	}
	h := &evictHarness{g: g, closer: func() {}}
	if useUpcall {
		d := upcall.NewDomain(g, upcallLatency)
		h.g = d
		h.closer = d.Close
	}

	clock := &vclock.Clock{}
	pager, err := kernel.NewPager(kernel.PagerConfig{
		Frames:   cfg.Frames,
		Mem:      m,
		NodeBase: grafts.PELRUNodeBase,
	}, clock)
	if err != nil {
		return nil, err
	}
	// Resident pages 100..100+Frames; none are hot.
	for i := 0; i < cfg.Frames; i++ {
		if _, err := pager.Access(kernel.PageID(100 + i)); err != nil {
			return nil, err
		}
	}
	// Hot list of distinct, non-resident pages.
	hot := grafts.NewHotList(m)
	hotPages := make([]kernel.PageID, cfg.HotListLen)
	for i := range hotPages {
		hotPages[i] = kernel.PageID(500000 + i)
	}
	hot.Set(hotPages)

	h.headAddr = pager.HeadAddr()
	h.wantPage = 100 // LRU head: first page accessed
	h.call = tech.ResolveDirect(h.g, "evict")
	return h, nil
}

// invoke runs one eviction decision and validates the result. It calls
// through the resolved entry, as a kernel hook point would.
func (h *evictHarness) invoke() error {
	h.argBuf[0] = h.headAddr
	v, err := h.call(h.argBuf[:])
	if err != nil {
		return err
	}
	if v != h.wantPage {
		return fmt.Errorf("bench: evict returned %d, want %d", v, h.wantPage)
	}
	return nil
}

// evictTechs are Table 2's columns, in paper order plus this repo's
// additions (upcall row and ablation variants appear via dedicated rows).
var evictTechs = []tech.ID{
	tech.CompiledUnsafe, tech.Bytecode, tech.AOT, tech.CompiledSafe, tech.CompiledSFI,
	tech.Script, tech.NativeUnsafe, tech.Domain,
}

// RunEviction regenerates Table 2.
func RunEviction(cfg Config) (*EvictResult, error) {
	res := &EvictResult{HotListLen: cfg.HotListLen, FaultTime: cfg.SimulatedFaultTime()}
	if pf, err := lmb.MeasurePageFault(min(cfg.FaultPages, 1024)); err == nil {
		res.ModernFault = pf.PerFault
	}
	var base time.Duration

	measure := func(name, paper string, h *evictHarness, iters int) error {
		defer h.closer()
		// Within-run ramp: long enough to reach steady CPU frequency and
		// warm caches, or the first-measured technology is unfairly
		// penalized. Run-level warmup (cfg.WarmupRuns, discarded below)
		// then covers the allocator/branch-predictor state a whole run
		// perturbs.
		warm := iters / 10
		if warm < 64 {
			warm = 64
		}
		deadline := time.Now().Add(20 * time.Millisecond)
		for i := 0; i < warm || time.Now().Before(deadline); i++ {
			if err := h.invoke(); err != nil {
				return err
			}
			if i > 1<<22 {
				break
			}
		}
		s, err := measureSeries(cfg.EffectiveWarmup(), cfg.Runs, func() (time.Duration, error) {
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				if err := h.invoke(); err != nil {
					return 0, err
				}
			}
			return time.Since(t0) / time.Duration(iters), nil
		})
		if err != nil {
			return err
		}
		row := EvictRow{
			Tech: name, PaperName: paper, Per: s.Mean, RelStd: s.RelStd, N: s.N,
			P50: s.P50, P95: s.P95, P99: s.P99,
		}
		if base == 0 {
			base = s.Mean
		}
		row.Normalized = float64(s.Mean) / float64(base)
		if s.Mean > 0 {
			row.BreakEven = float64(res.FaultTime) / float64(s.Mean)
			if res.ModernFault > 0 {
				row.BreakEvenModern = float64(res.ModernFault) / float64(s.Mean)
			}
		}
		res.Rows = append(res.Rows, row)
		return nil
	}

	for _, id := range evictTechs {
		iters := cfg.EvictIters
		if id == tech.Script {
			// The script class is ~1000x slower; scale the inner loop so
			// a run stays bounded while per-invocation cost is exact.
			iters = max(cfg.EvictIters/1000, 20)
		}
		if id == tech.Bytecode {
			iters = max(cfg.EvictIters/10, 100)
		}
		h, err := newEvictHarness(cfg, id, false, 0)
		if err != nil {
			return nil, fmt.Errorf("eviction %s: %w", id, err)
		}
		if err := measure(string(id), tech.PaperName(id), h, iters); err != nil {
			return nil, fmt.Errorf("eviction %s: %w", id, err)
		}
	}
	// The user-level-server row: the same compiled graft behind a real
	// protection-domain crossing.
	h, err := newEvictHarness(cfg, tech.CompiledUnsafe, true, 0)
	if err != nil {
		return nil, err
	}
	if err := measure("upcall-server", "C in user-level server", h, max(cfg.EvictIters/10, 100)); err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the paper's Table 2 shape.
func (r *EvictResult) Table() *stats.Table {
	t := &stats.Table{
		Title:  "Table 2: VM Page Eviction",
		Header: []string{"technology", "stands in for", "raw/eviction", "normalized", "B/E (90s disk)", "B/E (modern)"},
		Caption: fmt.Sprintf(
			"Mean time to search a %d-entry hot list per eviction. Break-even = fault\n"+
				"time / graft time: evictions the graft may run per fault saved; the 90s\n"+
				"column uses the modeled disk-backed fault (%s), the modern column this\n"+
				"machine's measured minor fault (%s). The paper's application profits at\n"+
				"break-even > 781. Paper (Solaris): C 4.5µs/1.0/1533, Java 141µs/31.3/49,\n"+
				"Modula-3 6.3µs/1.4/1095, Omniware 6.3µs/1.4/1095, Tcl ~40ms (4 orders).",
			r.HotListLen, stats.FormatDuration(r.FaultTime), stats.FormatDuration(r.ModernFault)),
	}
	for _, row := range r.Rows {
		modern := "n/a"
		if row.BreakEvenModern > 0 {
			modern = stats.Count(row.BreakEvenModern)
		}
		t.AddRow(row.Tech, row.PaperName,
			fmt.Sprintf("%s(%.1f%%)", stats.FormatDuration(row.Per), row.RelStd*100),
			stats.Ratio(row.Normalized),
			stats.Count(row.BreakEven),
			modern)
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
