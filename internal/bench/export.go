package bench

import (
	"encoding/json"
	"time"
)

// Report is the machine-readable form of a full evaluation run, written
// by graftbench -json so results can be archived, diffed between
// machines, or plotted without scraping the text tables.
type Report struct {
	// GeneratedNote describes scale ("paper" or "quick").
	GeneratedNote string          `json:"note,omitempty"`
	Signal        *SignalResult   `json:"table1,omitempty"`
	Evict         *EvictResult    `json:"table2,omitempty"`
	Fault         *FaultResult    `json:"table3,omitempty"`
	Disk          *DiskResult     `json:"table4,omitempty"`
	MD5           *MD5Result      `json:"table5,omitempty"`
	LD            *LDResult       `json:"table6,omitempty"`
	Figure1       *Figure1Result  `json:"figure1,omitempty"`
	PacketFilter  *PFResult       `json:"pktfilter,omitempty"`
	Ablation      *AblationResult `json:"ablation,omitempty"`
}

// MarshalJSON flattens time.Durations to nanoseconds implicitly (the
// standard library already encodes them as integers), so the default
// marshaling is fine; this wrapper exists to pin the indentation policy
// in one place.
func (r *Report) Encode() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// DurationsNote documents the unit convention for consumers.
const DurationsNote = "all durations are nanoseconds"

var _ = time.Nanosecond // keep the time import tied to the convention above
