package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"time"

	"graftlab/internal/telemetry"
)

// HostInfo records where a report was produced, so archived runs can be
// compared across machines.
type HostInfo struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
	Hostname  string `json:"hostname,omitempty"`
}

// CollectHost snapshots the current machine.
func CollectHost() *HostInfo {
	name, _ := os.Hostname()
	return &HostInfo{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Hostname:  name,
	}
}

// Report is the machine-readable form of a full evaluation run, written
// by graftbench -json so results can be archived, diffed between
// machines, or plotted without scraping the text tables.
type Report struct {
	// GeneratedNote describes scale ("paper" or "quick").
	GeneratedNote string          `json:"note,omitempty"`
	Host          *HostInfo       `json:"host,omitempty"`
	Config        *Config         `json:"config,omitempty"`
	Signal        *SignalResult   `json:"table1,omitempty"`
	Evict         *EvictResult    `json:"table2,omitempty"`
	Fault         *FaultResult    `json:"table3,omitempty"`
	Disk          *DiskResult     `json:"table4,omitempty"`
	MD5           *MD5Result      `json:"table5,omitempty"`
	LD            *LDResult       `json:"table6,omitempty"`
	Figure1       *Figure1Result  `json:"figure1,omitempty"`
	PacketFilter  *PFResult       `json:"pktfilter,omitempty"`
	PFBatch       *PFBatchResult  `json:"pktfilter_batch,omitempty"`
	Swap          *SwapResult     `json:"swap_under_load,omitempty"`
	Ablation      *AblationResult `json:"ablation,omitempty"`
	Scale         *ScaleResult    `json:"scale,omitempty"`
	// Telemetry holds per-graft invocation counters accumulated during the
	// run (graftbench -telemetry); empty when telemetry was off.
	Telemetry []telemetry.GraftSnapshot `json:"telemetry,omitempty"`
}

// Encode renders the report as indented JSON via the standard marshaler;
// time.Duration fields encode as integer nanoseconds (DurationsNote).
// This wrapper exists to pin the indentation policy in one place.
func (r *Report) Encode() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// DurationsNote documents the unit convention for consumers.
const DurationsNote = "all durations are nanoseconds"

var _ = time.Nanosecond // keep the time import tied to the convention above
