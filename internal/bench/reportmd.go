package bench

import (
	"fmt"
	"strings"
	"time"

	"graftlab/internal/stats"
)

// ReportOptions parameterizes the generated REPORT.md.
type ReportOptions struct {
	// CVThreshold is the stability bar; <= 0 means DefaultCVThreshold.
	CVThreshold float64
	// BaselinePath names the archived report the comparison section was
	// gated against ("" when no comparison ran).
	BaselinePath string
	// Tolerance and EffectThreshold echo the gate's settings into the
	// report so an archived REPORT.md is self-describing.
	Tolerance       float64
	EffectThreshold float64
}

func (o ReportOptions) cv() float64 {
	if o.CVThreshold > 0 {
		return o.CVThreshold
	}
	return DefaultCVThreshold
}

// fmtCellValue renders a cell value in its natural unit.
func fmtCellValue(c Cell) string {
	switch c.Unit {
	case "ns":
		return stats.FormatDuration(time.Duration(c.Value))
	case "ops/s":
		return fmt.Sprintf("%.0f/s", c.Value)
	case "bytes/s":
		return fmt.Sprintf("%.2f MB/s", c.Value/(1<<20))
	default:
		return fmt.Sprintf("%g", c.Value)
	}
}

// GenerateReportMD renders the suite's REPORT.md: the methodology header
// (scale, warmup, runs, seed, host), one stability-flagged table per
// experiment, and — when a comparison ran — the effect-size verdicts and
// the explicit skip summary. cmp may be nil.
func GenerateReportMD(r *Report, cmp *Comparison, opts ReportOptions) string {
	var b strings.Builder
	b.WriteString("# graftlab benchmark report\n\n")
	if r.GeneratedNote != "" {
		fmt.Fprintf(&b, "Scale: **%s**.\n", r.GeneratedNote)
	}
	if h := r.Host; h != nil {
		fmt.Fprintf(&b, "Host: %s/%s, %d CPU(s), %s", h.GOOS, h.GOARCH, h.NumCPU, h.GoVersion)
		if h.Hostname != "" {
			fmt.Fprintf(&b, " (`%s`)", h.Hostname)
		}
		b.WriteString(".\n")
	}
	if c := r.Config; c != nil {
		fmt.Fprintf(&b,
			"Methodology: every cell ran **%d warmup** run(s) (discarded) followed by "+
				"**%d measurement** run(s); inputs are derived from fixed seed **%d**, so "+
				"reruns of this configuration measure identical work. Durations are "+
				"means over the measurement runs; CV is the coefficient of variation "+
				"(std/mean). Cells with CV > %.0f%% are flagged `NOISY` and should not "+
				"anchor fine-grained comparisons. VM engine: %q. Telemetry during the "+
				"run: %t.\n",
			c.EffectiveWarmup(), c.Runs, c.Seed, opts.cv()*100, string(c.VM), c.Telemetry)
	}
	b.WriteString("\nAll durations in source artifacts are nanoseconds (`results.json`, `results.csv`).\n")

	cells := Flatten(r, opts.cv())
	titles := map[string]string{}
	order := []string{}
	for _, spec := range Experiments() {
		titles[spec.Name] = spec.Title
		order = append(order, spec.Name)
	}
	byExp := map[string][]Cell{}
	for _, c := range cells {
		byExp[c.Experiment] = append(byExp[c.Experiment], c)
	}
	for _, exp := range order {
		group := byExp[exp]
		if len(group) == 0 {
			continue
		}
		title := titles[exp]
		if title == "" {
			title = exp
		}
		fmt.Fprintf(&b, "\n## %s\n\n", title)
		b.WriteString("| row | metric | value | CV | n | p50 | p95 | p99 | stability |\n")
		b.WriteString("|---|---|---:|---:|---:|---:|---:|---:|---|\n")
		for _, c := range group {
			stab := "ok"
			if !c.Stable {
				stab = "NOISY"
			}
			p := func(v float64) string {
				if v == 0 {
					return "-"
				}
				return stats.FormatDuration(time.Duration(v))
			}
			row := c.Row
			if row == "" {
				row = "-"
			}
			n := "-"
			if c.N > 0 {
				n = fmt.Sprintf("%d", c.N)
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %.1f%% | %s | %s | %s | %s | %s |\n",
				row, c.Metric, fmtCellValue(c), c.CV*100, n, p(c.P50), p(c.P95), p(c.P99), stab)
		}
	}

	if cmp != nil {
		b.WriteString("\n## Regression gate\n\n")
		if opts.BaselinePath != "" {
			fmt.Fprintf(&b, "Baseline: `%s`. ", opts.BaselinePath)
		}
		eff := opts.EffectThreshold
		if eff <= 0 {
			eff = stats.EffectLarge
		}
		fmt.Fprintf(&b,
			"A cell regresses only when it moved in the bad direction by more than "+
				"%.0f%% AND the move is statistically significant (|Cohen's d| >= %.2f). "+
				"Moves inside a cell's own variance read `noise`, not `regression`.\n\n",
			opts.Tolerance*100, eff)
		b.WriteString("| cell | metric | baseline | current | ratio | d | verdict |\n")
		b.WriteString("|---|---|---:|---:|---:|---:|---|\n")
		for _, cell := range cmp.Cells {
			fmtV := func(v float64) string {
				if strings.HasSuffix(cell.Metric, "_ns") {
					return stats.FormatDuration(time.Duration(v))
				}
				return fmt.Sprintf("%.4g", v)
			}
			verdict := cell.Verdict
			if verdict == VerdictRegression {
				verdict = "**regression**"
			}
			fmt.Fprintf(&b, "| %s %s | %s | %s | %s | x%.2f | %s | %s |\n",
				cell.Experiment, cell.Row, cell.Metric,
				fmtV(cell.Baseline), fmtV(cell.Current), cell.Ratio,
				formatD(cell.EffectSize), verdict)
		}
		regs := cmp.Regressions()
		fmt.Fprintf(&b, "\n%d of %d gated metrics regressed.\n", len(regs), cmp.Compared())
		if sum := cmp.SkipSummary(); sum != "" {
			b.WriteString("\n### Not fully checked\n\n```\n")
			b.WriteString(sum)
			b.WriteString("\n```\n")
		} else {
			b.WriteString("\nNothing was skipped: every experiment and row in both reports was gated.\n")
		}
	}
	return b.String()
}
