package bench

import (
	"fmt"
	"strings"
	"time"

	"graftlab/internal/stats"
	"graftlab/internal/tech"
)

// Figure1Point is one x,y pair of the break-even curve. Measured is the
// empirical check: the same graft actually run behind an upcall domain
// with that synthetic latency (0 when the point was not measured).
type Figure1Point struct {
	UpcallTime time.Duration
	BreakEven  float64
	Measured   float64
}

// Figure1Result reproduces Figure 1: the eviction graft's break-even
// point as a function of upcall time, with the compiled technologies'
// break-even levels as horizontal reference lines. As in the paper, the
// curve is computed from the measured native graft time: break-even(L) =
// faultTime / (nativeGraftTime + L).
type Figure1Result struct {
	FaultTime  time.Duration
	NativeTime time.Duration
	Points     []Figure1Point
	// Reference break-even levels for the safe compiled technologies.
	SafeLevel float64
	SFILevel  float64
	// CrossoverUpcall is the largest upcall time at which a user-level
	// server still beats the slower of the two compiled technologies.
	CrossoverUpcall time.Duration
}

// RunFigure1 computes the sweep from an EvictResult (reusing its
// measurements rather than re-running them).
func RunFigure1(cfg Config, ev *EvictResult) (*Figure1Result, error) {
	res := &Figure1Result{FaultTime: ev.FaultTime}
	for _, row := range ev.Rows {
		switch tech.ID(row.Tech) {
		case tech.CompiledUnsafe:
			res.NativeTime = row.Per
		case tech.CompiledSafe:
			res.SafeLevel = row.BreakEven
		case tech.CompiledSFI:
			res.SFILevel = row.BreakEven
		}
	}
	if res.NativeTime == 0 {
		return nil, fmt.Errorf("bench: figure 1 needs the compiled-unsafe row of Table 2")
	}
	// Sweep 0..50µs, the paper's x-axis. Every fifth point is also
	// measured end to end: the compiled graft behind a real upcall
	// domain with the synthetic latency applied.
	for us := 0; us <= 50; us += 2 {
		L := time.Duration(us) * time.Microsecond
		be := float64(res.FaultTime) / float64(res.NativeTime+L)
		pt := Figure1Point{UpcallTime: L, BreakEven: be}
		if us%10 == 0 {
			measured, err := measureUpcallEvict(cfg, L)
			if err != nil {
				return nil, err
			}
			if measured > 0 {
				pt.Measured = float64(res.FaultTime) / float64(measured)
			}
		}
		res.Points = append(res.Points, pt)
	}
	// Crossover: upcall time where the server's break-even drops to the
	// compiled level: L = fault/level - native.
	level := res.SafeLevel
	if res.SFILevel > 0 && (level == 0 || res.SFILevel < level) {
		level = res.SFILevel
	}
	if level > 0 {
		L := time.Duration(float64(res.FaultTime)/level) - res.NativeTime
		if L < 0 {
			L = 0
		}
		res.CrossoverUpcall = L
	}
	return res, nil
}

// Table renders the curve as a text series.
func (r *Figure1Result) Table() *stats.Table {
	t := &stats.Table{
		Title:  "Figure 1: Break-Even vs Upcall Time (VM page eviction)",
		Header: []string{"upcall time", "computed", "measured", ""},
		Caption: fmt.Sprintf(
			"break-even(L) = fault(%s) / (native graft %s + L). Reference levels:\n"+
				"safe-language %.0f, SFI %.0f. A user-level server competes with compiled\n"+
				"downloaded code only below L = %s (paper: ~5-10µs).",
			stats.FormatDuration(r.FaultTime), stats.FormatDuration(r.NativeTime),
			r.SafeLevel, r.SFILevel, stats.FormatDuration(r.CrossoverUpcall)),
	}
	maxBE := 0.0
	for _, p := range r.Points {
		if p.BreakEven > maxBE {
			maxBE = p.BreakEven
		}
	}
	for _, p := range r.Points {
		barLen := 0
		if maxBE > 0 {
			barLen = int(p.BreakEven / maxBE * 40)
		}
		measured := ""
		if p.Measured > 0 {
			measured = stats.Count(p.Measured)
		}
		t.AddRow(stats.FormatDuration(p.UpcallTime),
			stats.Count(p.BreakEven),
			measured,
			strings.Repeat("#", barLen))
	}
	return t
}

// measureUpcallEvict times the eviction graft behind an upcall domain
// with synthetic latency L, returning the mean per-invocation time.
func measureUpcallEvict(cfg Config, L time.Duration) (time.Duration, error) {
	h, err := newEvictHarness(cfg, tech.CompiledUnsafe, true, L)
	if err != nil {
		return 0, err
	}
	defer h.closer()
	iters := cfg.EvictIters / 100
	if iters < 50 {
		iters = 50
	}
	for i := 0; i < 16; i++ {
		if err := h.invoke(); err != nil {
			return 0, err
		}
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := h.invoke(); err != nil {
			return 0, err
		}
	}
	return time.Since(t0) / time.Duration(iters), nil
}

// CSV renders the series for external plotting.
func (r *Figure1Result) CSV() string {
	var b strings.Builder
	b.WriteString("upcall_us,break_even,measured,safe_level,sfi_level\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%.1f,%.1f,%.1f,%.1f,%.1f\n",
			float64(p.UpcallTime)/float64(time.Microsecond),
			p.BreakEven, p.Measured, r.SafeLevel, r.SFILevel)
	}
	return b.String()
}
