package bench

import (
	"testing"
	"time"
)

// md5Report builds a minimal Table 5 report for comparator tests.
func md5Report(bytes int, total time.Duration, normalized float64) *Report {
	return &Report{MD5: &MD5Result{
		Bytes: bytes,
		Rows:  []MD5Row{{Tech: "compiled-unsafe", Total: total, Normalized: normalized}},
	}}
}

func scaleReport(service time.Duration, thr float64) *Report {
	return &Report{Scale: &ScaleResult{
		ServiceTime: service,
		Rows: []ScaleRow{{
			Workload: "md5", Tech: "compiled-unsafe",
			Cells: []ScaleCell{{Workers: 4, Throughput: thr}},
		}},
	}}
}

func TestCompareIdenticalReportsClean(t *testing.T) {
	base := md5Report(1<<20, 100*time.Millisecond, 1)
	regs, compared := CompareReports(base, md5Report(1<<20, 100*time.Millisecond, 1), 0.30)
	if len(regs) != 0 {
		t.Fatalf("identical reports regressed: %v", regs)
	}
	if compared == 0 {
		t.Fatal("nothing compared")
	}
}

func TestCompareFlagsSlowdown(t *testing.T) {
	base := md5Report(1<<20, 100*time.Millisecond, 1)
	regs, _ := CompareReports(base, md5Report(1<<20, 200*time.Millisecond, 2), 0.30)
	if len(regs) != 1 {
		t.Fatalf("2x slowdown not flagged: %v", regs)
	}
	if regs[0].Experiment != "table5" || regs[0].Metric != "total_ns" {
		t.Fatalf("wrong regression identity: %+v", regs[0])
	}
	if regs[0].Ratio < 1.9 || regs[0].Ratio > 2.1 {
		t.Fatalf("ratio = %v, want ~2", regs[0].Ratio)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := md5Report(1<<20, 100*time.Millisecond, 1)
	regs, _ := CompareReports(base, md5Report(1<<20, 10*time.Millisecond, 1), 0.30)
	if len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}

func TestCompareToleranceBoundary(t *testing.T) {
	base := md5Report(1<<20, 100*time.Millisecond, 1)
	if regs, _ := CompareReports(base, md5Report(1<<20, 129*time.Millisecond, 1), 0.30); len(regs) != 0 {
		t.Fatalf("move inside tolerance flagged: %v", regs)
	}
	if regs, _ := CompareReports(base, md5Report(1<<20, 131*time.Millisecond, 1), 0.30); len(regs) != 1 {
		t.Fatalf("move outside tolerance not flagged: %v", regs)
	}
}

// Different workload sizes must fall back to the dimensionless
// normalized column, so a paper-scale baseline gates a quick rerun.
func TestCompareNormalizedFallback(t *testing.T) {
	base := md5Report(1<<20, 400*time.Millisecond, 2)
	cur := md5Report(256<<10, 100*time.Millisecond, 2) // raw 4x apart, same normalized
	if regs, _ := CompareReports(base, cur, 0.30); len(regs) != 0 {
		t.Fatalf("size-mismatched raw durations compared: %v", regs)
	}
	cur = md5Report(256<<10, 100*time.Millisecond, 4)
	regs, _ := CompareReports(base, cur, 0.30)
	if len(regs) != 1 || regs[0].Metric != "normalized" {
		t.Fatalf("normalized regression not flagged: %v", regs)
	}
}

// Throughput compares in the opposite direction: lower is worse.
func TestCompareThroughputDirection(t *testing.T) {
	base := scaleReport(200*time.Microsecond, 1000)
	if regs, _ := CompareReports(base, scaleReport(200*time.Microsecond, 500), 0.30); len(regs) != 1 {
		t.Fatalf("throughput collapse not flagged: %v", regs)
	}
	if regs, _ := CompareReports(base, scaleReport(200*time.Microsecond, 2000), 0.30); len(regs) != 0 {
		t.Fatalf("throughput gain flagged: %v", regs)
	}
	// A different service time changes the model; those cells are skipped.
	if _, compared := CompareReports(base, scaleReport(100*time.Microsecond, 10), 0.30); compared != 0 {
		t.Fatal("cells with mismatched service time compared")
	}
}

// A baseline archived before a technology existed must keep gating runs
// that include the new column: rows matched by name, additions ignored.
func TestCompareToleratesAddedColumns(t *testing.T) {
	base := md5Report(1<<20, 100*time.Millisecond, 1)
	cur := md5Report(1<<20, 100*time.Millisecond, 1)
	cur.MD5.Rows = append(cur.MD5.Rows,
		MD5Row{Tech: "aot", Total: 900 * time.Millisecond, Normalized: 9})
	regs, compared := CompareReports(base, cur, 0.30)
	if len(regs) != 0 {
		t.Fatalf("added column flagged as regression: %v", regs)
	}
	if compared != 1 {
		t.Fatalf("compared %d metrics, want 1 (only the shared row)", compared)
	}
	// And the shared rows still gate: slow down the pre-existing column
	// next to the new one and the regression must surface.
	cur.MD5.Rows[0].Total = 500 * time.Millisecond
	if regs, _ := CompareReports(base, cur, 0.30); len(regs) != 1 {
		t.Fatalf("shared-row regression masked by added column: %v", regs)
	}
}

func TestCompareDisjointReports(t *testing.T) {
	base := &Report{Evict: &EvictResult{Rows: []EvictRow{{Tech: "script", Per: time.Millisecond}}}}
	regs, compared := CompareReports(base, md5Report(1<<20, time.Millisecond, 1), 0.30)
	if compared != 0 || len(regs) != 0 {
		t.Fatalf("disjoint reports compared: %d metrics, %v", compared, regs)
	}
}
