package bench

import (
	"math"
	"strings"
	"testing"
	"time"
)

// tolOnly mirrors the pre-effect-size gate: tolerance with the default
// (large) effect threshold. Helpers below build variance-free rows, whose
// shifts are infinitely significant, so these tests gate on ratio alone.
var tolOnly = CompareOptions{Tolerance: 0.30}

// md5Report builds a minimal Table 5 report for comparator tests.
func md5Report(bytes int, total time.Duration, normalized float64) *Report {
	return &Report{MD5: &MD5Result{
		Bytes: bytes,
		Rows:  []MD5Row{{Tech: "compiled-unsafe", Total: total, Normalized: normalized}},
	}}
}

// md5NoisyReport is md5Report with per-row variance attached.
func md5NoisyReport(total time.Duration, cv float64, n int) *Report {
	r := md5Report(1<<20, total, 1)
	r.MD5.Rows[0].RelStd = cv
	r.MD5.Rows[0].N = n
	return r
}

func scaleReport(service time.Duration, thr float64) *Report {
	return &Report{Scale: &ScaleResult{
		ServiceTime: service,
		Rows: []ScaleRow{{
			Workload: "md5", Tech: "compiled-unsafe",
			Cells: []ScaleCell{{Workers: 4, Throughput: thr}},
		}},
	}}
}

func TestCompareIdenticalReportsClean(t *testing.T) {
	base := md5Report(1<<20, 100*time.Millisecond, 1)
	cmp := CompareReports(base, md5Report(1<<20, 100*time.Millisecond, 1), tolOnly)
	if regs := cmp.Regressions(); len(regs) != 0 {
		t.Fatalf("identical reports regressed: %v", regs)
	}
	if cmp.Compared() == 0 {
		t.Fatal("nothing compared")
	}
	if s := cmp.SkipSummary(); s != "" {
		t.Fatalf("identical reports produced a skip summary: %q", s)
	}
}

func TestCompareFlagsSlowdown(t *testing.T) {
	base := md5Report(1<<20, 100*time.Millisecond, 1)
	regs := CompareReports(base, md5Report(1<<20, 200*time.Millisecond, 2), tolOnly).Regressions()
	if len(regs) != 1 {
		t.Fatalf("2x slowdown not flagged: %v", regs)
	}
	if regs[0].Experiment != "table5" || regs[0].Metric != "total_ns" {
		t.Fatalf("wrong regression identity: %+v", regs[0])
	}
	if regs[0].Ratio < 1.9 || regs[0].Ratio > 2.1 {
		t.Fatalf("ratio = %v, want ~2", regs[0].Ratio)
	}
	// Variance-free shift: infinitely significant effect.
	if !math.IsInf(regs[0].EffectSize, 1) {
		t.Fatalf("effect size = %v, want +Inf", regs[0].EffectSize)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := md5Report(1<<20, 100*time.Millisecond, 1)
	cmp := CompareReports(base, md5Report(1<<20, 10*time.Millisecond, 1), tolOnly)
	if regs := cmp.Regressions(); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
	if v := cmp.Cells[0].Verdict; v != VerdictImproved {
		t.Fatalf("10x speedup verdict = %q, want %q", v, VerdictImproved)
	}
}

func TestCompareToleranceBoundary(t *testing.T) {
	base := md5Report(1<<20, 100*time.Millisecond, 1)
	if regs := CompareReports(base, md5Report(1<<20, 129*time.Millisecond, 1), tolOnly).Regressions(); len(regs) != 0 {
		t.Fatalf("move inside tolerance flagged: %v", regs)
	}
	if regs := CompareReports(base, md5Report(1<<20, 131*time.Millisecond, 1), tolOnly).Regressions(); len(regs) != 1 {
		t.Fatalf("move outside tolerance not flagged: %v", regs)
	}
}

// The core of the effect-size gate: the same 1.4x slowdown regresses a
// quiet cell but reads "noise" on a cell whose own variance swallows it.
// A noisy cell can no longer fail (or pass) by luck.
func TestCompareEffectSizeGating(t *testing.T) {
	// Quiet cell: CV 2% at n=5. d = 0.4/~0.024 >> 0.8 -> regression.
	quietBase := md5NoisyReport(100*time.Millisecond, 0.02, 5)
	quietCur := md5NoisyReport(140*time.Millisecond, 0.02, 5)
	cmp := CompareReports(quietBase, quietCur, tolOnly)
	if regs := cmp.Regressions(); len(regs) != 1 {
		t.Fatalf("quiet-cell 1.4x slowdown not flagged: %+v", cmp.Cells)
	}
	// Noisy cell: CV 50% at n=5 -> pooled std ~61ms, d ~0.66 < 0.8.
	noisyBase := md5NoisyReport(100*time.Millisecond, 0.50, 5)
	noisyCur := md5NoisyReport(140*time.Millisecond, 0.50, 5)
	cmp = CompareReports(noisyBase, noisyCur, tolOnly)
	if regs := cmp.Regressions(); len(regs) != 0 {
		t.Fatalf("in-noise move failed the gate: %v", regs)
	}
	if v := cmp.Cells[0].Verdict; v != VerdictNoise {
		t.Fatalf("noisy cell verdict = %q, want %q", v, VerdictNoise)
	}
	// The comparison still reports the statistics it used.
	cell := cmp.Cells[0]
	if cell.BaselineCV != 0.50 || cell.CurrentCV != 0.50 {
		t.Fatalf("cell CVs = %v/%v", cell.BaselineCV, cell.CurrentCV)
	}
	if cell.EffectSize < 0.5 || cell.EffectSize > 0.8 {
		t.Fatalf("effect size = %v, want ~0.66", cell.EffectSize)
	}
	// A custom (stricter) threshold flips the noisy verdict.
	strict := CompareOptions{Tolerance: 0.30, EffectThreshold: 0.5}
	if regs := CompareReports(noisyBase, noisyCur, strict).Regressions(); len(regs) != 1 {
		t.Fatal("custom effect threshold ignored")
	}
}

// Old-schema baselines carry RelStd but no per-row N; the comparer must
// fall back to the baseline config's Runs and still gate.
func TestCompareOldSchemaBaselineNFallback(t *testing.T) {
	base := md5NoisyReport(100*time.Millisecond, 0.02, 0) // no N: old schema
	base.Config = &Config{Runs: 5}
	cur := md5NoisyReport(300*time.Millisecond, 0.02, 5)
	cmp := CompareReports(base, cur, tolOnly)
	if regs := cmp.Regressions(); len(regs) != 1 {
		t.Fatalf("old-schema baseline did not gate: %+v", cmp.Cells)
	}
	if d := cmp.Cells[0].EffectSize; math.IsInf(d, 0) || d < 0.8 {
		t.Fatalf("effect size = %v, want finite large", d)
	}
}

// Different workload sizes must fall back to the dimensionless
// normalized column — and say so in the notes, so the gate never
// degrades silently.
func TestCompareNormalizedFallback(t *testing.T) {
	base := md5Report(1<<20, 400*time.Millisecond, 2)
	cur := md5Report(256<<10, 100*time.Millisecond, 2) // raw 4x apart, same normalized
	cmp := CompareReports(base, cur, tolOnly)
	if regs := cmp.Regressions(); len(regs) != 0 {
		t.Fatalf("size-mismatched raw durations compared: %v", regs)
	}
	if len(cmp.Notes) != 1 || !strings.Contains(cmp.Notes[0].Reason, "normalized") {
		t.Fatalf("size fallback not noted: %+v", cmp.Notes)
	}
	if !strings.Contains(cmp.SkipSummary(), "input sizes differ") {
		t.Fatalf("skip summary lacks the fallback note:\n%s", cmp.SkipSummary())
	}
	cur = md5Report(256<<10, 100*time.Millisecond, 4)
	regs := CompareReports(base, cur, tolOnly).Regressions()
	if len(regs) != 1 || regs[0].Metric != "normalized" {
		t.Fatalf("normalized regression not flagged: %v", regs)
	}
}

// Throughput compares in the opposite direction: lower is worse.
func TestCompareThroughputDirection(t *testing.T) {
	base := scaleReport(200*time.Microsecond, 1000)
	if regs := CompareReports(base, scaleReport(200*time.Microsecond, 500), tolOnly).Regressions(); len(regs) != 1 {
		t.Fatalf("throughput collapse not flagged: %v", regs)
	}
	if regs := CompareReports(base, scaleReport(200*time.Microsecond, 2000), tolOnly).Regressions(); len(regs) != 0 {
		t.Fatalf("throughput gain flagged: %v", regs)
	}
}

// A service-time mismatch invalidates the closed-loop model: the whole
// scale experiment is skipped, and the skip is named, not silent.
func TestCompareScaleServiceTimeMismatchSkips(t *testing.T) {
	base := scaleReport(200*time.Microsecond, 1000)
	cmp := CompareReports(base, scaleReport(100*time.Microsecond, 10), tolOnly)
	if cmp.Compared() != 0 {
		t.Fatal("cells with mismatched service time compared")
	}
	if len(cmp.Skips) != 1 || cmp.Skips[0].Experiment != "scale" {
		t.Fatalf("mismatch not recorded as a skip: %+v", cmp.Skips)
	}
	if !strings.Contains(cmp.Skips[0].Reason, "service_time mismatch") {
		t.Fatalf("skip reason unhelpful: %q", cmp.Skips[0].Reason)
	}
	if !strings.Contains(cmp.SkipSummary(), "service_time mismatch") {
		t.Fatalf("summary lacks the skip:\n%s", cmp.SkipSummary())
	}
}

// A worker count present only in the current run is skipped by name.
func TestCompareScaleMissingCellSkips(t *testing.T) {
	base := scaleReport(200*time.Microsecond, 1000)
	cur := scaleReport(200*time.Microsecond, 1000)
	cur.Scale.Rows[0].Cells = append(cur.Scale.Rows[0].Cells,
		ScaleCell{Workers: 8, Throughput: 1800})
	cmp := CompareReports(base, cur, tolOnly)
	if cmp.Compared() != 1 {
		t.Fatalf("compared %d, want 1", cmp.Compared())
	}
	if len(cmp.Skips) != 1 || !strings.Contains(cmp.Skips[0].Row, "w=8") {
		t.Fatalf("missing worker count not skipped by name: %+v", cmp.Skips)
	}
}

// A baseline archived before a technology existed must keep gating runs
// that include the new column: rows matched by name, additions recorded
// as skips rather than silently dropped.
func TestCompareToleratesAddedColumns(t *testing.T) {
	base := md5Report(1<<20, 100*time.Millisecond, 1)
	cur := md5Report(1<<20, 100*time.Millisecond, 1)
	cur.MD5.Rows = append(cur.MD5.Rows,
		MD5Row{Tech: "aot", Total: 900 * time.Millisecond, Normalized: 9})
	cmp := CompareReports(base, cur, tolOnly)
	if regs := cmp.Regressions(); len(regs) != 0 {
		t.Fatalf("added column flagged as regression: %v", regs)
	}
	if cmp.Compared() != 1 {
		t.Fatalf("compared %d metrics, want 1 (only the shared row)", cmp.Compared())
	}
	// The dropped row is visible in the skip summary.
	if len(cmp.Skips) != 1 || cmp.Skips[0].Row != "aot" {
		t.Fatalf("baseline-missing row not in skips: %+v", cmp.Skips)
	}
	if !strings.Contains(cmp.SkipSummary(), "row absent from baseline") {
		t.Fatalf("summary lacks the row skip:\n%s", cmp.SkipSummary())
	}
	// And the shared rows still gate: slow down the pre-existing column
	// next to the new one and the regression must surface.
	cur.MD5.Rows[0].Total = 500 * time.Millisecond
	if regs := CompareReports(base, cur, tolOnly).Regressions(); len(regs) != 1 {
		t.Fatalf("shared-row regression masked by added column: %v", regs)
	}
}

// Disjoint reports compare nothing — but each one-sided experiment is
// named in the skips, so an accidentally empty gate is loud.
func TestCompareDisjointReports(t *testing.T) {
	base := &Report{Evict: &EvictResult{Rows: []EvictRow{{Tech: "script", Per: time.Millisecond}}}}
	cmp := CompareReports(base, md5Report(1<<20, time.Millisecond, 1), tolOnly)
	if cmp.Compared() != 0 || len(cmp.Regressions()) != 0 {
		t.Fatalf("disjoint reports compared: %d metrics, %v", cmp.Compared(), cmp.Regressions())
	}
	if len(cmp.Skips) != 2 {
		t.Fatalf("want 2 experiment-level skips, got %+v", cmp.Skips)
	}
	sum := cmp.SkipSummary()
	for _, want := range []string{"table2: experiment in baseline but not in current run",
		"table5: experiment in current run but not in baseline"} {
		if !strings.Contains(sum, want) {
			t.Errorf("skip summary lacks %q:\n%s", want, sum)
		}
	}
}

// Packet-filter rows gate on the intensive per-packet time.
func TestComparePacketFilterRows(t *testing.T) {
	mk := func(per time.Duration) *Report {
		return &Report{PacketFilter: &PFResult{
			Rows: []PFRow{{Tech: "compiled-unsafe", PerPacket: per}},
		}}
	}
	if regs := CompareReports(mk(100), mk(250), tolOnly).Regressions(); len(regs) != 1 {
		t.Fatalf("pktfilter slowdown not flagged: %v", regs)
	}
	if regs := CompareReports(mk(100), mk(110), tolOnly).Regressions(); len(regs) != 0 {
		t.Fatalf("pktfilter jitter flagged: %v", regs)
	}
}
