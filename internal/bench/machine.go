package bench

import (
	"fmt"
	"os"
	"time"

	"graftlab/internal/lmb"
	"graftlab/internal/stats"
	"graftlab/internal/upcall"
)

// SignalResult reproduces Table 1: the cost of kernel-to-user control
// transfer, the paper's proxy for an upcall.
type SignalResult struct {
	// PerSignal is the real measured signal-handling time (child process,
	// handled-minus-ignored methodology).
	PerSignal time.Duration
	// Crossing is the goroutine protection-domain crossing, this repo's
	// floor for an aggressively tuned upcall path.
	Crossing time.Duration
	// SignalErr records why the child-process measurement was skipped.
	SignalErr error `json:"-"`
}

// RunSignal regenerates Table 1.
func RunSignal(cfg Config) (*SignalResult, error) {
	res := &SignalResult{}
	crossing, err := upcall.MeasureCrossing(20000)
	if err != nil {
		return nil, err
	}
	res.Crossing = crossing

	exe := cfg.Exe
	if exe == "" {
		exe, err = os.Executable()
		if err != nil {
			res.SignalErr = err
			return res, nil
		}
	}
	sig, err := upcall.MeasureSignal(exe, upcall.DefaultSignalBatch, cfg.SignalIters)
	if err != nil {
		res.SignalErr = err
		return res, nil
	}
	res.PerSignal = sig.PerSignal
	return res, nil
}

// Table renders the paper's Table 1 shape.
func (r *SignalResult) Table() *stats.Table {
	t := &stats.Table{
		Title:  "Table 1: Upcall Cost Proxies",
		Header: []string{"mechanism", "per-crossing"},
		Caption: "Signal delivery uses the paper's exact methodology: 20 signals handled vs\n" +
			"ignored by a child process, difference / 20. Paper: Alpha 19.5µs, HP-UX\n" +
			"25.8µs, Linux-1995 55.9µs, Solaris 40.3µs; upcall measured ~40% quicker\n" +
			"than a signal on BSD/OS.",
	}
	if r.SignalErr != nil {
		t.AddRow("signal delivery (this machine)", "unavailable: "+r.SignalErr.Error())
	} else {
		t.AddRow("signal delivery (this machine)", stats.FormatDuration(r.PerSignal))
	}
	t.AddRow("goroutine domain crossing", stats.FormatDuration(r.Crossing))
	return t
}

// FaultResult reproduces Table 3: page fault service time, measured on
// the real machine and modeled for the 1990s disk.
type FaultResult struct {
	Measured  time.Duration // real COW fault, lat_pagefault style
	Simulated time.Duration // disk-backed fault under the model geometry
	Pages     int
}

// RunFault regenerates Table 3.
func RunFault(cfg Config) (*FaultResult, error) {
	pf, err := lmb.MeasurePageFault(cfg.FaultPages)
	if err != nil {
		return nil, err
	}
	return &FaultResult{
		Measured:  pf.PerFault,
		Simulated: cfg.SimulatedFaultTime(),
		Pages:     pf.Pages,
	}, nil
}

// Table renders the paper's Table 3 shape.
func (r *FaultResult) Table() *stats.Table {
	t := &stats.Table{
		Title:  "Table 3: Page Fault Time",
		Header: []string{"fault type", "time"},
		Caption: fmt.Sprintf(
			"Measured: %d COW faults via mmap (lat_pagefault method) — today's minor\n"+
				"fault. Simulated: disk-backed fault under the modeled geometry, the\n"+
				"quantity the paper's break-even uses. Paper: Alpha 25.1ms(16 pages),\n"+
				"HP-UX 17.9ms(4), Linux 4.7ms(1), Solaris 6.9ms(1).", r.Pages),
	}
	t.AddRow("measured minor fault (this machine)", stats.FormatDuration(r.Measured))
	t.AddRow("simulated disk-backed fault (model)", stats.FormatDuration(r.Simulated))
	return t
}

// DiskResult reproduces Table 4: delivered write bandwidth and the time
// to move 1 MB.
type DiskResult struct {
	MeasuredBW   int64 // bytes/s on the real machine (lmdd method)
	ModelBW      int64 // bytes/s under the simulated geometry
	Measured1MB  time.Duration
	Model1MB     time.Duration
	MeasureErr   error `json:"-"`
	BytesWritten int64
}

// RunDisk regenerates Table 4.
func RunDisk(cfg Config) (*DiskResult, error) {
	res := &DiskResult{}
	dw, err := lmb.MeasureDiskWrite(os.TempDir(), cfg.DiskWriteBytes)
	if err != nil {
		res.MeasureErr = err
	} else {
		res.MeasuredBW = dw.BytesPerSec
		res.BytesWritten = dw.Bytes
		if dw.BytesPerSec > 0 {
			res.Measured1MB = time.Duration(int64(time.Second) * (1 << 20) / dw.BytesPerSec)
		}
	}
	g := cfg.Geometry
	res.Model1MB = g.AvgSeek + g.HalfRotation +
		time.Duration(int64(1<<20)*int64(time.Second)/g.TransferRate)
	res.ModelBW = int64(float64(1<<20) / res.Model1MB.Seconds())
	return res, nil
}

// Table renders the paper's Table 4 shape.
func (r *DiskResult) Table() *stats.Table {
	t := &stats.Table{
		Title:  "Table 4: Disk I/O Time",
		Header: []string{"disk", "bandwidth", "1MB access"},
		Caption: "Measured: lmdd-method write + fsync on this machine. Model: the simulated\n" +
			"mid-90s disk all virtual-time experiments use. Paper: Alpha 4364KB/s\n" +
			"(235ms/MB), HP-UX 1855KB/s (552ms), Linux 1694KB/s (604ms), Solaris\n" +
			"3126KB/s (320ms).",
	}
	if r.MeasureErr != nil {
		t.AddRow("this machine", "unavailable: "+r.MeasureErr.Error(), "")
	} else {
		t.AddRow("this machine",
			fmt.Sprintf("%d KB/s", r.MeasuredBW>>10),
			stats.FormatDuration(r.Measured1MB))
	}
	t.AddRow("simulated model",
		fmt.Sprintf("%d KB/s", r.ModelBW>>10),
		stats.FormatDuration(r.Model1MB))
	return t
}
