package bench

import (
	"os"
	"strings"
	"testing"
	"time"

	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
	"graftlab/internal/upcall"
)

// TestMain lets this test binary serve as the Table 1 signal child.
func TestMain(m *testing.M) {
	upcall.SignalChildMain()
	os.Exit(m.Run())
}

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	c := Quick()
	c.Runs = 2
	c.EvictIters = 200
	c.MD5Bytes = 16 << 10
	c.MD5ScriptBytes = 2 << 10
	c.LDWrites = 2048
	c.LDScriptWrites = 128
	c.SignalIters = 20
	c.FaultPages = 128
	c.DiskWriteBytes = 256 << 10
	return c
}

func TestRunEvictionShape(t *testing.T) {
	res, err := RunEviction(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(evictTechs)+1 { // + upcall row
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byTech := map[string]EvictRow{}
	for _, r := range res.Rows {
		byTech[r.Tech] = r
		if r.Per <= 0 {
			t.Errorf("%s: nonpositive time", r.Tech)
		}
		if r.BreakEven <= 0 {
			t.Errorf("%s: nonpositive break-even", r.Tech)
		}
	}
	native := byTech[string(tech.CompiledUnsafe)]
	if native.Normalized != 1.0 {
		t.Errorf("native normalized = %v", native.Normalized)
	}
	// Ordering invariants from the paper: script >> bytecode > compiled.
	if byTech[string(tech.Script)].Per < 20*byTech[string(tech.CompiledUnsafe)].Per {
		t.Errorf("script (%v) not >> native (%v)", byTech[string(tech.Script)].Per, native.Per)
	}
	if byTech[string(tech.Bytecode)].Per < 2*byTech[string(tech.CompiledUnsafe)].Per {
		t.Errorf("bytecode (%v) not clearly slower than compiled (%v)",
			byTech[string(tech.Bytecode)].Per, native.Per)
	}
	// Table renders.
	out := res.Table().String()
	for _, want := range []string{"Table 2", "compiled-unsafe", "break-even"} {
		if !strings.Contains(out, want) {
			t.Errorf("table lacks %q", want)
		}
	}
}

func TestRunMD5Shape(t *testing.T) {
	res, err := RunMD5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(md5Techs)+1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var native, script MD5Row
	for _, r := range res.Rows {
		if r.Tech == string(tech.CompiledUnsafe) {
			native = r
		}
		if r.Tech == string(tech.Script) {
			script = r
		}
	}
	if native.Total <= 0 || script.Total <= 0 {
		t.Fatal("nonpositive totals")
	}
	if !script.Scaled {
		t.Error("script row should be marked scaled")
	}
	if script.Total < 50*native.Total {
		t.Errorf("script MD5 (%v) not orders slower than native (%v)", script.Total, native.Total)
	}
	if !strings.Contains(res.Table().String(), "MD5/disk") {
		t.Error("table lacks MD5/disk column")
	}
}

func TestRunLDShape(t *testing.T) {
	res, err := RunLD(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(ldTechs)+1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.SavedPerBlock <= 0 {
		t.Error("log layer saves nothing per block?")
	}
	for _, r := range res.Rows {
		if r.PerBlock <= 0 {
			t.Errorf("%s: nonpositive per-block", r.Tech)
		}
	}
	// The paper's conclusion: compiled per-block overhead is far below
	// the virtual seek-time budget.
	for _, r := range res.Rows {
		if r.Tech == string(tech.CompiledUnsafe) && time.Duration(r.PerBlock) > res.SavedPerBlock {
			t.Errorf("compiled per-block %v exceeds savings %v", r.PerBlock, res.SavedPerBlock)
		}
	}
	if !strings.Contains(res.Table().String(), "Table 6") {
		t.Error("table title missing")
	}
}

func TestRunSignalAndFaultAndDisk(t *testing.T) {
	cfg := tiny()
	sig, err := RunSignal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Crossing <= 0 {
		t.Error("crossing nonpositive")
	}
	if sig.SignalErr == nil && sig.PerSignal < 0 {
		t.Error("negative per-signal")
	}
	if !strings.Contains(sig.Table().String(), "Table 1") {
		t.Error("table 1 title missing")
	}

	ft, err := RunFault(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Measured <= 0 || ft.Simulated <= 0 {
		t.Errorf("fault result %+v", ft)
	}
	if ft.Simulated < 5*time.Millisecond {
		t.Errorf("simulated fault %v implausibly small for a 90s disk", ft.Simulated)
	}
	if !strings.Contains(ft.Table().String(), "Table 3") {
		t.Error("table 3 title missing")
	}

	dk, err := RunDisk(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dk.ModelBW <= 0 || dk.Model1MB <= 0 {
		t.Errorf("disk result %+v", dk)
	}
	// The model disk should deliver 1-5 MB/s, the paper's band.
	if dk.ModelBW < 1<<20 || dk.ModelBW > 5<<20 {
		t.Errorf("model bandwidth %d outside 1-5 MB/s band", dk.ModelBW)
	}
	if !strings.Contains(dk.Table().String(), "Table 4") {
		t.Error("table 4 title missing")
	}
}

func TestRunFigure1(t *testing.T) {
	cfg := tiny()
	ev, err := RunEviction(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := RunFigure1(cfg, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 26 {
		t.Fatalf("points = %d", len(fig.Points))
	}
	// Break-even is monotonically decreasing in upcall time.
	for i := 1; i < len(fig.Points); i++ {
		if fig.Points[i].BreakEven > fig.Points[i-1].BreakEven {
			t.Fatalf("curve not monotone at %d", i)
		}
	}
	if fig.Points[0].BreakEven <= fig.Points[len(fig.Points)-1].BreakEven*2 {
		t.Error("curve suspiciously flat")
	}
	csv := fig.CSV()
	if !strings.Contains(csv, "upcall_us") || strings.Count(csv, "\n") != 27 {
		t.Errorf("csv malformed:\n%s", csv)
	}
	if !strings.Contains(fig.Table().String(), "Figure 1") {
		t.Error("figure table missing title")
	}
}

func TestRunPacketFilterShape(t *testing.T) {
	res, err := RunPacketFilter(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(pfBenchTechs)+1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byTech := map[string]PFRow{}
	for _, r := range res.Rows {
		byTech[r.Tech] = r
		if r.PerPacket <= 0 || r.PacketsPerSec <= 0 {
			t.Errorf("%s: nonpositive measurement", r.Tech)
		}
	}
	if byTech[string(tech.Script)].PerPacket < 10*byTech[string(tech.CompiledUnsafe)].PerPacket {
		t.Errorf("script (%v) not >> compiled (%v)",
			byTech[string(tech.Script)].PerPacket, byTech[string(tech.CompiledUnsafe)].PerPacket)
	}
	if !strings.Contains(res.Table().String(), "Packet Filter") {
		t.Error("table title missing")
	}
}

func TestRunAblation(t *testing.T) {
	cfg := tiny()
	ab, err := RunAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ab.EvictSafe <= 0 || ab.EvictSafeNil <= 0 || ab.MD5SFI <= 0 || ab.MD5SFIFull <= 0 {
		t.Fatalf("ablation %+v", ab)
	}
	if ab.VMMetered <= 0 || ab.VMUnmetered <= 0 || ab.NativeMetered <= 0 || ab.NativeUnmetered <= 0 {
		t.Fatalf("fuel ablation %+v", ab)
	}
	if ab.EvictTelemetryOff <= 0 || ab.EvictTelemetryOn <= 0 ||
		ab.MD5TelemetryOff <= 0 || ab.MD5TelemetryOn <= 0 {
		t.Fatalf("telemetry ablation %+v", ab)
	}
	if telemetry.Enabled() {
		t.Error("ablation left telemetry enabled")
	}
	if !strings.Contains(ab.Table().String(), "NIL") {
		t.Error("ablation table missing")
	}
	if !strings.Contains(ab.Table().String(), "telemetry") {
		t.Error("ablation table missing telemetry rows")
	}
}

func TestSimulatedFaultTimeDerivation(t *testing.T) {
	cfg := Default()
	ft := cfg.SimulatedFaultTime()
	if ft < 10*time.Millisecond || ft > 30*time.Millisecond {
		t.Errorf("derived fault time %v outside 10-30ms band", ft)
	}
	cfg.SimFaultTime = time.Second
	if cfg.SimulatedFaultTime() != time.Second {
		t.Error("override ignored")
	}
}
