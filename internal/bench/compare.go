package bench

import (
	"fmt"
	"time"
)

// The regression checker turns archived BENCH_*.json reports into a
// gate: rerun an experiment, compare it against a committed baseline,
// and fail when a metric moved outside tolerance in the bad direction.
// Improvements never fail the gate — the baseline is a floor under
// quality, not a pin on exact numbers.

// Regression is one metric that moved outside tolerance.
type Regression struct {
	Experiment string  // "table2", "table5", "table6", "scale"
	Row        string  // technology (plus workload/workers where relevant)
	Metric     string  // what was compared
	Baseline   float64 // baseline value (ns for durations)
	Current    float64
	Ratio      float64 // Current / Baseline
}

// String renders one regression for the CLI.
func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %s %.4g -> %.4g (x%.2f)",
		r.Experiment, r.Row, r.Metric, r.Baseline, r.Current, r.Ratio)
}

// CompareReports diffs current against baseline with relative tolerance
// tol (0.30 allows a 30% move). Time-like metrics regress when current
// exceeds baseline*(1+tol); throughputs regress when current falls below
// baseline*(1-tol). Only experiments present in BOTH reports are
// compared, and raw durations are compared only when the workload sizes
// match — otherwise the dimensionless normalized column stands in, so a
// paper-scale baseline can still gate a quick-scale rerun. Rows are
// matched by technology name: a row present only in the current report
// (a technology column added after the baseline was archived) is never a
// regression, so old baselines keep gating new runs as the registry
// grows. Returns the regressions and how many metrics were compared.
func CompareReports(baseline, current *Report, tol float64) ([]Regression, int) {
	c := &comparer{tol: tol}

	if b, cur := baseline.Evict, current.Evict; b != nil && cur != nil {
		rows := make(map[string]EvictRow, len(b.Rows))
		for _, r := range b.Rows {
			rows[r.Tech] = r
		}
		sameSize := b.HotListLen == cur.HotListLen
		for _, r := range cur.Rows {
			br, ok := rows[r.Tech]
			if !ok {
				continue
			}
			if sameSize {
				c.worseAbove("table2", r.Tech, "per_eviction_ns", float64(br.Per), float64(r.Per))
			} else {
				c.worseAbove("table2", r.Tech, "normalized", br.Normalized, r.Normalized)
			}
		}
	}
	if b, cur := baseline.MD5, current.MD5; b != nil && cur != nil {
		rows := make(map[string]MD5Row, len(b.Rows))
		for _, r := range b.Rows {
			rows[r.Tech] = r
		}
		sameSize := b.Bytes == cur.Bytes
		for _, r := range cur.Rows {
			br, ok := rows[r.Tech]
			if !ok {
				continue
			}
			if sameSize {
				c.worseAbove("table5", r.Tech, "total_ns", float64(br.Total), float64(r.Total))
			} else {
				c.worseAbove("table5", r.Tech, "normalized", br.Normalized, r.Normalized)
			}
		}
	}
	if b, cur := baseline.LD, current.LD; b != nil && cur != nil {
		rows := make(map[string]LDRow, len(b.Rows))
		for _, r := range b.Rows {
			rows[r.Tech] = r
		}
		sameSize := b.Writes == cur.Writes
		for _, r := range cur.Rows {
			br, ok := rows[r.Tech]
			if !ok {
				continue
			}
			if sameSize {
				c.worseAbove("table6", r.Tech, "total_ns", float64(br.Total), float64(r.Total))
			} else {
				c.worseAbove("table6", r.Tech, "normalized", br.Normalized, r.Normalized)
			}
		}
	}
	if b, cur := baseline.Scale, current.Scale; b != nil && cur != nil &&
		b.ServiceTime == cur.ServiceTime {
		type key struct{ workload, tech string }
		rows := make(map[key]ScaleRow, len(b.Rows))
		for _, r := range b.Rows {
			rows[key{r.Workload, r.Tech}] = r
		}
		for _, r := range cur.Rows {
			br, ok := rows[key{r.Workload, r.Tech}]
			if !ok {
				continue
			}
			cells := make(map[int]ScaleCell, len(br.Cells))
			for _, cl := range br.Cells {
				cells[cl.Workers] = cl
			}
			for _, cl := range r.Cells {
				bc, ok := cells[cl.Workers]
				if !ok {
					continue
				}
				row := fmt.Sprintf("%s/%s w=%d", r.Workload, r.Tech, cl.Workers)
				c.worseBelow("scale", row, "ops_per_sec", bc.Throughput, cl.Throughput)
			}
		}
	}
	return c.regs, c.compared
}

type comparer struct {
	tol      float64
	compared int
	regs     []Regression
}

// worseAbove flags current > baseline*(1+tol): time-like metrics.
func (c *comparer) worseAbove(exp, row, metric string, base, cur float64) {
	c.record(exp, row, metric, base, cur, base > 0 && cur > base*(1+c.tol))
}

// worseBelow flags current < baseline*(1-tol): throughput-like metrics.
func (c *comparer) worseBelow(exp, row, metric string, base, cur float64) {
	c.record(exp, row, metric, base, cur, base > 0 && cur < base*(1-c.tol))
}

func (c *comparer) record(exp, row, metric string, base, cur float64, bad bool) {
	c.compared++
	if !bad {
		return
	}
	ratio := 0.0
	if base > 0 {
		ratio = cur / base
	}
	c.regs = append(c.regs, Regression{
		Experiment: exp, Row: row, Metric: metric,
		Baseline: base, Current: cur, Ratio: ratio,
	})
}

var _ = time.Nanosecond // durations compare in ns, per DurationsNote
