package bench

import (
	"fmt"
	"math"
	"strings"

	"graftlab/internal/stats"
)

// The regression checker turns archived BENCH_*.json reports into a
// gate: rerun an experiment, compare it against a committed baseline,
// and fail when a metric moved in the bad direction by BOTH a
// practically significant amount (the relative tolerance) AND a
// statistically significant one (Cohen's d at or above the effect
// threshold). A noisy cell whose confidence interval swallows the move
// reads "noise", not "regression" — and cannot pass or fail by luck.
// Improvements never fail the gate. Everything the comparison could NOT
// check is reported explicitly: skipped experiments, rows absent from
// the baseline, and raw-vs-normalized fallbacks all land in the skip
// summary instead of silently shrinking the gate.

// pfBatchGateTolerance is the minimum practical-significance floor for
// pktfilter-batch cells: a cell fails only when more than this much
// worse (1.5 = 2.5x the baseline). See the pktfilter-batch block in
// CompareReports for why these cells get a wider floor than the rest.
const pfBatchGateTolerance = 1.5

// CompareOptions tunes the gate.
type CompareOptions struct {
	// Tolerance is the practical-significance floor: a relative move
	// within it never regresses, however consistent (0.30 allows 30%).
	Tolerance float64
	// EffectThreshold is the minimum |Cohen's d| for a move to count as
	// statistically significant; 0 means stats.EffectLarge (0.8).
	EffectThreshold float64
}

func (o CompareOptions) effectThreshold() float64 {
	if o.EffectThreshold > 0 {
		return o.EffectThreshold
	}
	return stats.EffectLarge
}

// Cell verdicts.
const (
	VerdictOK         = "ok"         // within tolerance
	VerdictImproved   = "improved"   // significantly better
	VerdictNoise      = "noise"      // moved beyond tolerance, but inside the cell's own variance
	VerdictRegression = "regression" // worse by tolerance AND effect size
)

// CellComparison is one compared metric with the statistics behind its
// verdict — what `graftbench -check-against` prints per row.
type CellComparison struct {
	Experiment string  `json:"experiment"`
	Row        string  `json:"row"`
	Metric     string  `json:"metric"`
	Baseline   float64 `json:"baseline"` // ns for durations
	Current    float64 `json:"current"`
	Ratio      float64 `json:"ratio"` // Current / Baseline
	// Coefficients of variation on each side (0 when the report carried
	// no variance for this metric, e.g. scale throughput cells).
	BaselineCV float64 `json:"baseline_cv"`
	CurrentCV  float64 `json:"current_cv"`
	// EffectSize is Cohen's d of current vs baseline: positive means
	// current is larger. ±Inf when both sides are variance-free but
	// differ — a deterministic shift is maximally significant.
	EffectSize float64 `json:"effect_size"`
	// HigherBetter records the metric's good direction (throughputs).
	HigherBetter bool   `json:"higher_better,omitempty"`
	Verdict      string `json:"verdict"`
}

// String renders one gated cell for the CLI check output: both values,
// the ratio, each side's coefficient of variation, Cohen's d, and the
// verdict.
func (c CellComparison) String() string {
	return fmt.Sprintf("%s %s %s: %.4g -> %.4g (x%.2f, CV %.1f%% -> %.1f%%, d=%s) %s",
		c.Experiment, c.Row, c.Metric, c.Baseline, c.Current, c.Ratio,
		c.BaselineCV*100, c.CurrentCV*100, formatD(c.EffectSize), c.Verdict)
}

// Regression is one metric that failed the gate.
type Regression struct {
	Experiment string
	Row        string
	Metric     string
	Baseline   float64
	Current    float64
	Ratio      float64
	EffectSize float64
}

// String renders one regression for the CLI.
func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %s %.4g -> %.4g (x%.2f, d=%s)",
		r.Experiment, r.Row, r.Metric, r.Baseline, r.Current, r.Ratio, formatD(r.EffectSize))
}

// formatD prints Cohen's d compactly, including the infinite
// (variance-free) case.
func formatD(d float64) string {
	switch {
	case math.IsInf(d, 1):
		return "+inf"
	case math.IsInf(d, -1):
		return "-inf"
	default:
		return fmt.Sprintf("%.2f", d)
	}
}

// Skip is one thing the comparison could not (or did not) check.
type Skip struct {
	Experiment string `json:"experiment"`
	// Row is empty when the whole experiment was skipped.
	Row    string `json:"row,omitempty"`
	Reason string `json:"reason"`
}

func (s Skip) String() string {
	if s.Row == "" {
		return fmt.Sprintf("%s: %s", s.Experiment, s.Reason)
	}
	return fmt.Sprintf("%s %s: %s", s.Experiment, s.Row, s.Reason)
}

// Comparison is the full result of CompareReports.
type Comparison struct {
	Cells []CellComparison `json:"cells"`
	// Skips lists experiments and rows excluded from the gate entirely.
	Skips []Skip `json:"skips,omitempty"`
	// Notes lists comparisons that proceeded in a degraded form (e.g.
	// raw durations replaced by the normalized column on a workload-size
	// mismatch).
	Notes []Skip `json:"notes,omitempty"`
}

// Compared is the number of metrics actually gated.
func (c *Comparison) Compared() int { return len(c.Cells) }

// Regressions extracts the failing cells.
func (c *Comparison) Regressions() []Regression {
	var regs []Regression
	for _, cell := range c.Cells {
		if cell.Verdict == VerdictRegression {
			regs = append(regs, Regression{
				Experiment: cell.Experiment, Row: cell.Row, Metric: cell.Metric,
				Baseline: cell.Baseline, Current: cell.Current,
				Ratio: cell.Ratio, EffectSize: cell.EffectSize,
			})
		}
	}
	return regs
}

// SkipSummary renders everything the gate did not fully check; "" when
// nothing was skipped or degraded.
func (c *Comparison) SkipSummary() string {
	if len(c.Skips) == 0 && len(c.Notes) == 0 {
		return ""
	}
	var b strings.Builder
	if len(c.Skips) > 0 {
		exps, rows := 0, 0
		for _, s := range c.Skips {
			if s.Row == "" {
				exps++
			} else {
				rows++
			}
		}
		fmt.Fprintf(&b, "skipped (not gated): %d experiment(s), %d row(s)\n", exps, rows)
		for _, s := range c.Skips {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	}
	if len(c.Notes) > 0 {
		b.WriteString("degraded comparisons:\n")
		for _, n := range c.Notes {
			fmt.Fprintf(&b, "  %s\n", n)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// metricSample is one side of a compared metric.
type metricSample struct {
	mean float64 // central value (ns for durations, ops/s for rates)
	cv   float64 // coefficient of variation; 0 = unknown/variance-free
	n    int     // measurement runs behind mean; 0 = unknown
}

// comparer accumulates cells and skips while walking the two reports.
type comparer struct {
	out Comparison // result under construction
	tol float64
	eff float64
	// Run-count fallbacks for old-schema rows that lack per-row N: the
	// report's configured Runs, per side.
	baseN, curN int
}

func (c *comparer) skip(exp, row, reason string) {
	c.out.Skips = append(c.out.Skips, Skip{Experiment: exp, Row: row, Reason: reason})
}

func (c *comparer) note(exp, row, reason string) {
	c.out.Notes = append(c.out.Notes, Skip{Experiment: exp, Row: row, Reason: reason})
}

// compare gates one metric. higherBetter selects the bad direction.
func (c *comparer) compare(exp, row, metric string, base, cur metricSample, higherBetter bool) {
	n1, n2 := base.n, cur.n
	if n1 <= 0 {
		n1 = c.baseN
	}
	if n2 <= 0 {
		n2 = c.curN
	}
	d := stats.CohensDStats(base.mean, base.cv*base.mean, n1, cur.mean, cur.cv*cur.mean, n2)
	cell := CellComparison{
		Experiment: exp, Row: row, Metric: metric,
		Baseline: base.mean, Current: cur.mean,
		BaselineCV: base.cv, CurrentCV: cur.cv,
		EffectSize: d, HigherBetter: higherBetter,
	}
	if base.mean > 0 {
		cell.Ratio = cur.mean / base.mean
	}
	worse := base.mean > 0 && cur.mean > base.mean*(1+c.tol)
	better := base.mean > 0 && cur.mean < base.mean*(1-c.tol)
	if higherBetter {
		worse = base.mean > 0 && cur.mean < base.mean*(1-c.tol)
		better = base.mean > 0 && cur.mean > base.mean*(1+c.tol)
	}
	significant := math.Abs(d) >= c.eff
	switch {
	case worse && significant:
		cell.Verdict = VerdictRegression
	case worse:
		cell.Verdict = VerdictNoise
	case better && significant:
		cell.Verdict = VerdictImproved
	default:
		cell.Verdict = VerdictOK
	}
	c.out.Cells = append(c.out.Cells, cell)
}

// configRuns extracts the configured run count from a report, as the N
// fallback for old-schema rows.
func configRuns(r *Report) int {
	if r != nil && r.Config != nil {
		return r.Config.Runs
	}
	return 0
}

// CompareReports diffs current against baseline under opts. Rows are
// matched by technology name; a row present only in the current report
// (a technology added after the baseline was archived) is recorded as a
// skip, never a regression, so old baselines keep gating new runs as the
// registry grows. Raw durations are compared only when workload sizes
// match — otherwise the dimensionless normalized column stands in (noted
// in Comparison.Notes), so a paper-scale baseline can still gate a
// quick-scale rerun.
func CompareReports(baseline, current *Report, opts CompareOptions) *Comparison {
	c := &comparer{
		tol:   opts.Tolerance,
		eff:   opts.effectThreshold(),
		baseN: configRuns(baseline),
		curN:  configRuns(current),
	}

	// presence reports whether both reports carry an experiment; when
	// exactly one does, that is a skip the summary must name.
	presence := func(exp string, inBase, inCur bool) bool {
		switch {
		case inBase && inCur:
			return true
		case inBase:
			c.skip(exp, "", "experiment in baseline but not in current run")
		case inCur:
			c.skip(exp, "", "experiment in current run but not in baseline")
		}
		return false
	}

	if presence("table2", baseline.Evict != nil, current.Evict != nil) {
		b, cur := baseline.Evict, current.Evict
		rows := make(map[string]EvictRow, len(b.Rows))
		for _, r := range b.Rows {
			rows[r.Tech] = r
		}
		sameSize := b.HotListLen == cur.HotListLen
		if !sameSize {
			c.note("table2", "", fmt.Sprintf(
				"hot-list length differs (baseline %d, current %d): comparing normalized, not raw",
				b.HotListLen, cur.HotListLen))
		}
		for _, r := range cur.Rows {
			br, ok := rows[r.Tech]
			if !ok {
				c.skip("table2", r.Tech, "row absent from baseline")
				continue
			}
			if sameSize {
				c.compare("table2", r.Tech, "per_eviction_ns",
					metricSample{float64(br.Per), br.RelStd, br.N},
					metricSample{float64(r.Per), r.RelStd, r.N}, false)
			} else {
				c.compare("table2", r.Tech, "normalized",
					metricSample{br.Normalized, br.RelStd, br.N},
					metricSample{r.Normalized, r.RelStd, r.N}, false)
			}
		}
	}
	if presence("table5", baseline.MD5 != nil, current.MD5 != nil) {
		b, cur := baseline.MD5, current.MD5
		rows := make(map[string]MD5Row, len(b.Rows))
		for _, r := range b.Rows {
			rows[r.Tech] = r
		}
		sameSize := b.Bytes == cur.Bytes
		if !sameSize {
			c.note("table5", "", fmt.Sprintf(
				"input sizes differ (baseline %d, current %d bytes): comparing normalized, not raw",
				b.Bytes, cur.Bytes))
		}
		for _, r := range cur.Rows {
			br, ok := rows[r.Tech]
			if !ok {
				c.skip("table5", r.Tech, "row absent from baseline")
				continue
			}
			if sameSize {
				c.compare("table5", r.Tech, "total_ns",
					metricSample{float64(br.Total), br.RelStd, br.N},
					metricSample{float64(r.Total), r.RelStd, r.N}, false)
			} else {
				c.compare("table5", r.Tech, "normalized",
					metricSample{br.Normalized, br.RelStd, br.N},
					metricSample{r.Normalized, r.RelStd, r.N}, false)
			}
		}
	}
	if presence("table6", baseline.LD != nil, current.LD != nil) {
		b, cur := baseline.LD, current.LD
		rows := make(map[string]LDRow, len(b.Rows))
		for _, r := range b.Rows {
			rows[r.Tech] = r
		}
		sameSize := b.Writes == cur.Writes
		if !sameSize {
			c.note("table6", "", fmt.Sprintf(
				"write counts differ (baseline %d, current %d): comparing normalized, not raw",
				b.Writes, cur.Writes))
		}
		for _, r := range cur.Rows {
			br, ok := rows[r.Tech]
			if !ok {
				c.skip("table6", r.Tech, "row absent from baseline")
				continue
			}
			if sameSize {
				c.compare("table6", r.Tech, "total_ns",
					metricSample{float64(br.Total), br.RelStd, br.N},
					metricSample{float64(r.Total), r.RelStd, r.N}, false)
			} else {
				c.compare("table6", r.Tech, "normalized",
					metricSample{br.Normalized, br.RelStd, br.N},
					metricSample{r.Normalized, r.RelStd, r.N}, false)
			}
		}
	}
	if presence("pktfilter", baseline.PacketFilter != nil, current.PacketFilter != nil) {
		b, cur := baseline.PacketFilter, current.PacketFilter
		rows := make(map[string]PFRow, len(b.Rows))
		for _, r := range b.Rows {
			rows[r.Tech] = r
		}
		for _, r := range cur.Rows {
			br, ok := rows[r.Tech]
			if !ok {
				c.skip("pktfilter", r.Tech, "row absent from baseline")
				continue
			}
			// Per-packet time is already intensive (normalized by trace
			// length), so it compares across trace sizes.
			c.compare("pktfilter", r.Tech, "per_packet_ns",
				metricSample{float64(br.PerPacket), br.RelStd, br.N},
				metricSample{float64(r.PerPacket), r.RelStd, r.N}, false)
		}
	}
	if presence("pktfilter-batch", baseline.PFBatch != nil, current.PFBatch != nil) {
		b, cur := baseline.PFBatch, current.PFBatch
		// These are ns-scale micro cells: between-invocation drift on a
		// shared runner (frequency scaling, CPU migration) reaches ~2x
		// even when each run's own CV is tight, so Cohen's d cannot
		// excuse it as noise. Gate them at a wider practical floor — the
		// cell exists to catch protocol-level regressions (losing the
		// batched fast path is a 5-10x move), not scheduler weather.
		savedTol := c.tol
		if c.tol < pfBatchGateTolerance {
			c.tol = pfBatchGateTolerance
		}
		type key struct {
			tech, boundary string
			batch          int
		}
		cells := make(map[key]PFBatchCell)
		for _, r := range b.Rows {
			for _, cl := range r.Cells {
				cells[key{r.Tech, r.Boundary, cl.Batch}] = cl
			}
		}
		for _, r := range cur.Rows {
			for _, cl := range r.Cells {
				name := fmt.Sprintf("%s/%s b=%d", r.Tech, r.Boundary, cl.Batch)
				bc, ok := cells[key{r.Tech, r.Boundary, cl.Batch}]
				if !ok {
					c.skip("pktfilter-batch", name, "cell absent from baseline")
					continue
				}
				// Per-packet time is intensive (normalized by trace length),
				// so it compares across trace sizes, like pktfilter.
				c.compare("pktfilter-batch", name, "per_packet_ns",
					metricSample{float64(bc.PerPacket), bc.RelStd, bc.N},
					metricSample{float64(cl.PerPacket), cl.RelStd, cl.N}, false)
			}
		}
		c.tol = savedTol
	}
	if presence("swap-under-load", baseline.Swap != nil, current.Swap != nil) {
		b, cur := baseline.Swap, current.Swap
		// Same ns-scale micro-cell situation as pktfilter-batch: the cells
		// exist to catch protocol-level regressions (the slot path growing
		// a lock or an allocation is a multi-x move), so they gate at the
		// widened practical floor, not the headline tolerance.
		savedTol := c.tol
		if c.tol < pfBatchGateTolerance {
			c.tol = pfBatchGateTolerance
		}
		type key struct{ tech, mode string }
		cells := make(map[key]SwapCell)
		for _, r := range b.Rows {
			for _, cl := range r.Cells {
				cells[key{r.Tech, cl.Mode}] = cl
			}
		}
		for _, r := range cur.Rows {
			for _, cl := range r.Cells {
				name := r.Tech + "/" + cl.Mode
				bc, ok := cells[key{r.Tech, cl.Mode}]
				if !ok {
					c.skip("swap-under-load", name, "cell absent from baseline")
					continue
				}
				// Per-op time is intensive (normalized by the op count), so
				// it compares across workload sizes.
				c.compare("swap-under-load", name, "per_op_ns",
					metricSample{float64(bc.PerOp), bc.RelStd, bc.N},
					metricSample{float64(cl.PerOp), cl.RelStd, cl.N}, false)
			}
		}
		c.tol = savedTol
	}
	if presence("scale", baseline.Scale != nil, current.Scale != nil) {
		b, cur := baseline.Scale, current.Scale
		if b.ServiceTime != cur.ServiceTime {
			c.skip("scale", "", fmt.Sprintf(
				"service_time mismatch (baseline %s, current %s): closed-loop throughputs are not comparable",
				stats.FormatDuration(b.ServiceTime), stats.FormatDuration(cur.ServiceTime)))
		} else {
			type key struct{ workload, tech string }
			rows := make(map[key]ScaleRow, len(b.Rows))
			for _, r := range b.Rows {
				rows[key{r.Workload, r.Tech}] = r
			}
			for _, r := range cur.Rows {
				name := r.Workload + "/" + r.Tech
				br, ok := rows[key{r.Workload, r.Tech}]
				if !ok {
					c.skip("scale", name, "row absent from baseline")
					continue
				}
				cells := make(map[int]ScaleCell, len(br.Cells))
				for _, cl := range br.Cells {
					cells[cl.Workers] = cl
				}
				for _, cl := range r.Cells {
					bc, ok := cells[cl.Workers]
					if !ok {
						c.skip("scale", fmt.Sprintf("%s w=%d", name, cl.Workers),
							"worker count absent from baseline")
						continue
					}
					// Throughput cells carry no variance; the gate falls
					// back to pure ratio (zero-variance d is ±Inf, so the
					// effect test always passes for them).
					c.compare("scale", fmt.Sprintf("%s w=%d", name, cl.Workers), "ops_per_sec",
						metricSample{bc.Throughput, 0, 1},
						metricSample{cl.Throughput, 0, 1}, true)
				}
			}
		}
	}
	return &c.out
}
