package bench

import (
	"fmt"
	"time"

	"graftlab/internal/grafts"
	"graftlab/internal/md5x"
	"graftlab/internal/mem"
	"graftlab/internal/stats"
	"graftlab/internal/tech"
	"graftlab/internal/upcall"
	"graftlab/internal/workload"
)

// MD5Row is one technology's line in Table 5.
type MD5Row struct {
	Tech      string
	PaperName string
	Total     time.Duration // time to fingerprint MD5Bytes
	RelStd    float64
	// N is the measurement-run count behind this row (warmup excluded).
	N int `json:"n,omitempty"`
	// Tail latency across the per-run totals (unscaled; see Scaled).
	P50        time.Duration `json:"p50"`
	P95        time.Duration `json:"p95"`
	P99        time.Duration `json:"p99"`
	Normalized float64
	// MD5OverDisk is Total / (time to read the same bytes from the
	// simulated disk); < 1 means the fingerprint hides under I/O.
	MD5OverDisk float64
	// Scaled marks rows measured at reduced size and scaled linearly.
	Scaled bool
}

// MD5Result reproduces Table 5.
type MD5Result struct {
	Bytes    int
	DiskTime time.Duration // simulated time to move Bytes from disk
	Rows     []MD5Row
}

// md5Techs are Table 5's columns in paper order.
var md5Techs = []tech.ID{
	tech.CompiledUnsafe, tech.Bytecode, tech.AOT, tech.CompiledSafe, tech.CompiledSFI,
	tech.Script, tech.NativeUnsafe,
}

// RunMD5 regenerates Table 5.
func RunMD5(cfg Config) (*MD5Result, error) {
	data := make([]byte, cfg.MD5Bytes)
	// The input is a deterministic function of the configured seed, so
	// two runs of the same Config fingerprint identical bytes.
	workload.FillPattern(data, uint32(cfg.Seed))
	want := md5x.Of(data)

	// Disk time for the full input, from the geometry: one seek then a
	// streaming read (the paper's "1MB access time" in Table 4).
	g := cfg.Geometry
	diskTime := g.AvgSeek + g.HalfRotation +
		time.Duration(int64(cfg.MD5Bytes)*int64(time.Second)/g.TransferRate)

	res := &MD5Result{Bytes: cfg.MD5Bytes, DiskTime: diskTime}
	var base time.Duration

	measure := func(name, paper string, graft tech.Graft, closer func(), bytes int) error {
		if closer != nil {
			defer closer()
		}
		h, err := grafts.NewMD5Graft(graft)
		if err != nil {
			return err
		}
		input := data[:bytes]
		wantDigest := want
		if bytes != cfg.MD5Bytes {
			wantDigest = md5x.Of(input)
		}
		s, err := measureSeries(cfg.EffectiveWarmup(), cfg.Runs, func() (time.Duration, error) {
			if err := h.Reset(); err != nil {
				return 0, err
			}
			t0 := time.Now()
			if _, err := h.Write(input); err != nil {
				return 0, err
			}
			got, err := h.Sum()
			d := time.Since(t0)
			if err != nil {
				return 0, err
			}
			if got != wantDigest {
				return 0, fmt.Errorf("bench: %s computed wrong digest", name)
			}
			return d, nil
		})
		if err != nil {
			return err
		}
		total := s.Mean
		scaled := false
		if bytes != cfg.MD5Bytes {
			total = time.Duration(float64(total) * float64(cfg.MD5Bytes) / float64(bytes))
			scaled = true
		}
		if base == 0 {
			base = total
		}
		res.Rows = append(res.Rows, MD5Row{
			Tech: name, PaperName: paper, N: s.N,
			Total: total, RelStd: s.RelStd,
			P50: s.P50, P95: s.P95, P99: s.P99,
			Normalized:  float64(total) / float64(base),
			MD5OverDisk: float64(total) / float64(diskTime),
			Scaled:      scaled,
		})
		return nil
	}

	for _, id := range md5Techs {
		graft, err := tech.Load(id, grafts.MD5, mem.New(grafts.MDMemSize), tech.Options{VM: cfg.VM})
		if err != nil {
			return nil, fmt.Errorf("md5 %s: %w", id, err)
		}
		bytes := cfg.MD5Bytes
		runs := cfg.Runs
		switch id {
		case tech.Script:
			bytes = cfg.MD5ScriptBytes
			runs = min(cfg.Runs, 3)
		case tech.Bytecode:
			runs = min(cfg.Runs, 5)
		}
		saved := cfg.Runs
		cfg.Runs = runs
		err = measure(string(id), tech.PaperName(id), graft, nil, bytes)
		cfg.Runs = saved
		if err != nil {
			return nil, fmt.Errorf("md5 %s: %w", id, err)
		}
	}

	// Upcall row: compiled graft behind a domain crossing; the host
	// chunks at the buffer window, so ~Bytes/96KB upcalls total — the
	// paper's "one upcall for every 64KB read from disk" analysis.
	inner, err := tech.Load(tech.CompiledUnsafe, grafts.MD5, mem.New(grafts.MDMemSize), tech.Options{})
	if err != nil {
		return nil, err
	}
	d := upcall.NewDomain(inner, 0)
	saved := cfg.Runs
	cfg.Runs = min(cfg.Runs, 10)
	err = measure("upcall-server", "C in user-level server", d, d.Close, cfg.MD5Bytes)
	cfg.Runs = saved
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the paper's Table 5 shape.
func (r *MD5Result) Table() *stats.Table {
	t := &stats.Table{
		Title:  fmt.Sprintf("Table 5: MD5 Fingerprinting (%d KB)", r.Bytes>>10),
		Header: []string{"technology", "stands in for", "raw", "normalized", "MD5/disk"},
		Caption: fmt.Sprintf(
			"Time to fingerprint the input vs %s to stream it from the modeled disk;\n"+
				"MD5/disk < 1 means fingerprinting hides under I/O. '~' rows measured at\n"+
				"reduced size, scaled linearly. Paper (Solaris): C 146ms/1.0/0.46,\n"+
				"Java 10368ms/71/32, Modula-3 294ms/2.0/0.92, Omniware 219ms/1.5/0.68,\n"+
				"Tcl 50 minutes.",
			stats.FormatDuration(r.DiskTime)),
	}
	for _, row := range r.Rows {
		raw := fmt.Sprintf("%s(%.1f%%)", stats.FormatDuration(row.Total), row.RelStd*100)
		if row.Scaled {
			raw = "~" + raw
		}
		t.AddRow(row.Tech, row.PaperName, raw,
			stats.Ratio(row.Normalized),
			fmt.Sprintf("%.2f", row.MD5OverDisk))
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
