package bench

import (
	"fmt"
	"time"

	"graftlab/internal/compile"
	"graftlab/internal/gel"
	"graftlab/internal/grafts"
	"graftlab/internal/kernel"
	"graftlab/internal/md5x"
	"graftlab/internal/mem"
	"graftlab/internal/stats"
	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
	"graftlab/internal/vclock"
	"graftlab/internal/vm"
	"graftlab/internal/workload"
)

// AblationResult isolates the two design choices the paper's text
// analyzes inside its tables:
//
//   - §5.4: the Linux Modula-3 compiler emitted an explicit NIL check per
//     pointer access (2.5x over C) where Solaris/Alpha relied on the
//     hardware trap (1.1-1.4x). A1 measures checked memory with and
//     without the explicit NIL compare, on the eviction graft.
//   - §5.5: the Omniware beta sandboxed only writes and jumps; read
//     protection would add a mask per load. A2 measures SFI with and
//     without load masking, on MD5 (load-heavy) — the paper notes the
//     missing read protection "gives it a performance advantage over
//     Modula-3".
//   - §4's preemption requirement ("we must be able to preempt an
//     extension that runs too long") is not free: A3 measures the fuel
//     metering each execution engine pays per eviction, on and off.
type AblationResult struct {
	EvictSafe    time.Duration // checked, hardware-trap NIL
	EvictSafeNil time.Duration // checked + explicit NIL compare
	MD5SFI       time.Duration // write/jump sandboxing only
	MD5SFIFull   time.Duration // + load masking
	MD5Bytes     int
	// Fuel-metering cost per eviction, per engine.
	VMUnmetered     time.Duration
	VMMetered       time.Duration
	NativeUnmetered time.Duration
	NativeMetered   time.Duration
	// A4: the optimizing bytecode translator, piece by piece, on MD5
	// (the hottest bytecode workload): the baseline interpreter, the full
	// translator, fusion disabled, and per-instruction instead of
	// block-granular fuel.
	VMBaselineMD5 time.Duration
	VMOptMD5      time.Duration
	VMNoFuseMD5   time.Duration
	VMPerInstrMD5 time.Duration
	// A5: the script class's defining cost, made explicit: eviction via
	// Tcl with the paper's per-eval re-parse vs the opt-in structural
	// parse cache (internal/script/cache.go).
	ScriptReparse    time.Duration
	ScriptParseCache time.Duration
	// A6: the telemetry subsystem's own observer cost, holding it to its
	// documented <=2% budget: the compiled eviction graft and the compiled
	// MD5 stream with per-graft metrics off vs on.
	EvictTelemetryOff time.Duration
	EvictTelemetryOn  time.Duration
	MD5TelemetryOff   time.Duration
	MD5TelemetryOn    time.Duration
	// A7: the profiler + causal span tracer, against the A6 metrics-on
	// baseline. The compiled eviction hot path carries neither a
	// sampling hook nor a span emit point, so the full observability
	// stack must stay inside the same <=2% budget there; bytecode MD5
	// is where the fuel-sampling hook actually fires, so its pair
	// prices the profiler where it does real work.
	EvictObsBase time.Duration // metrics on, profiler+spans off
	EvictObsFull time.Duration // metrics + profiler + span tracing on
	MD5VMProfOff time.Duration
	MD5VMProfOn  time.Duration
}

// RunAblation measures both ablations.
func RunAblation(cfg Config) (*AblationResult, error) {
	res := &AblationResult{MD5Bytes: cfg.MD5Bytes}

	evictPer := func(id tech.ID) (time.Duration, error) {
		h, err := newEvictHarness(cfg, id, false, 0)
		if err != nil {
			return 0, err
		}
		defer h.closer()
		for i := 0; i < 16; i++ {
			if err := h.invoke(); err != nil {
				return 0, err
			}
		}
		iters := max(cfg.EvictIters/2, 1000)
		best := time.Duration(0)
		for r := 0; r < max(cfg.Runs/3, 3); r++ {
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				if err := h.invoke(); err != nil {
					return 0, err
				}
			}
			d := time.Since(t0) / time.Duration(iters)
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	var err error
	if res.EvictSafe, err = evictPer(tech.CompiledSafe); err != nil {
		return nil, err
	}
	if res.EvictSafeNil, err = evictPer(tech.CompiledSafeNil); err != nil {
		return nil, err
	}

	data := make([]byte, cfg.MD5Bytes)
	workload.FillPattern(data, 9)
	want := md5x.Of(data)
	md5Total := func(id tech.ID) (time.Duration, error) {
		g, err := tech.Load(id, grafts.MD5, mem.New(grafts.MDMemSize), tech.Options{VM: cfg.VM})
		if err != nil {
			return 0, err
		}
		h, err := grafts.NewMD5Graft(g)
		if err != nil {
			return 0, err
		}
		best := time.Duration(0)
		for r := 0; r < max(cfg.Runs/6, 2); r++ {
			if err := h.Reset(); err != nil {
				return 0, err
			}
			t0 := time.Now()
			if _, err := h.Write(data); err != nil {
				return 0, err
			}
			got, err := h.Sum()
			d := time.Since(t0)
			if err != nil {
				return 0, err
			}
			if got != want {
				return 0, fmt.Errorf("bench: ablation %s wrong digest", id)
			}
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	if res.MD5SFI, err = md5Total(tech.CompiledSFI); err != nil {
		return nil, err
	}
	if res.MD5SFIFull, err = md5Total(tech.CompiledSFIFull); err != nil {
		return nil, err
	}

	// A3: fuel metering on/off for the two metered engines.
	fuelPer := func(id tech.ID, fuel int64) (time.Duration, error) {
		m := mem.New(grafts.PEMemSize)
		g, err := tech.Load(id, grafts.PageEvict, m, tech.Options{Fuel: fuel, VM: cfg.VM})
		if err != nil {
			return 0, err
		}
		hh, err := newEvictHarnessWith(cfg, g, m)
		if err != nil {
			return 0, err
		}
		iters := max(cfg.EvictIters/10, 500)
		for i := 0; i < 32; i++ {
			if err := hh.invoke(); err != nil {
				return 0, err
			}
		}
		best := time.Duration(0)
		for r := 0; r < max(cfg.Runs/3, 3); r++ {
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				if err := hh.invoke(); err != nil {
					return 0, err
				}
			}
			d := time.Since(t0) / time.Duration(iters)
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	const budget = 1 << 20
	if res.VMUnmetered, err = fuelPer(tech.Bytecode, 0); err != nil {
		return nil, err
	}
	if res.VMMetered, err = fuelPer(tech.Bytecode, budget); err != nil {
		return nil, err
	}
	if res.NativeUnmetered, err = fuelPer(tech.NativeUnsafe, 0); err != nil {
		return nil, err
	}
	if res.NativeMetered, err = fuelPer(tech.NativeUnsafe, budget); err != nil {
		return nil, err
	}

	// A4: translator variants, built directly on internal/vm so the
	// translator's knobs (fusion, fuel granularity) can be toggled.
	md5VM := func(baseline bool, oc vm.OptConfig) (time.Duration, error) {
		prog, err := gel.ParseAndCheck(grafts.MD5.GEL)
		if err != nil {
			return 0, err
		}
		mod, err := compile.Compile(prog)
		if err != nil {
			return 0, err
		}
		m := mem.New(grafts.MDMemSize)
		vmCfg := mem.Config{Policy: mem.PolicyChecked}
		var g tech.Graft
		if baseline {
			v, err := vm.New(mod, m, vmCfg)
			if err != nil {
				return 0, err
			}
			g = v
		} else {
			v, err := vm.NewOpt(mod, m, vmCfg, oc)
			if err != nil {
				return 0, err
			}
			g = v
		}
		h, err := grafts.NewMD5Graft(g)
		if err != nil {
			return 0, err
		}
		best := time.Duration(0)
		for r := 0; r < max(cfg.Runs/6, 2); r++ {
			if err := h.Reset(); err != nil {
				return 0, err
			}
			t0 := time.Now()
			if _, err := h.Write(data); err != nil {
				return 0, err
			}
			got, err := h.Sum()
			d := time.Since(t0)
			if err != nil {
				return 0, err
			}
			if got != want {
				return 0, fmt.Errorf("bench: vm ablation wrong digest")
			}
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	if res.VMBaselineMD5, err = md5VM(true, vm.OptConfig{}); err != nil {
		return nil, err
	}
	if res.VMOptMD5, err = md5VM(false, vm.OptConfig{}); err != nil {
		return nil, err
	}
	if res.VMNoFuseMD5, err = md5VM(false, vm.OptConfig{NoFuse: true}); err != nil {
		return nil, err
	}
	if res.VMPerInstrMD5, err = md5VM(false, vm.OptConfig{PerInstrFuel: true}); err != nil {
		return nil, err
	}

	// A5: per-eval re-parse vs structural parse cache, on the eviction
	// graft's Tcl translation.
	scriptEvict := func(cache bool) (time.Duration, error) {
		m := mem.New(grafts.PEMemSize)
		g, err := tech.Load(tech.Script, grafts.PageEvict, m, tech.Options{ScriptParseCache: cache})
		if err != nil {
			return 0, err
		}
		hh, err := newEvictHarnessWith(cfg, g, m)
		if err != nil {
			return 0, err
		}
		for i := 0; i < 8; i++ {
			if err := hh.invoke(); err != nil {
				return 0, err
			}
		}
		iters := max(cfg.EvictIters/100, 50)
		best := time.Duration(0)
		for r := 0; r < max(cfg.Runs/3, 3); r++ {
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				if err := hh.invoke(); err != nil {
					return 0, err
				}
			}
			d := time.Since(t0) / time.Duration(iters)
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	if res.ScriptReparse, err = scriptEvict(false); err != nil {
		return nil, err
	}
	if res.ScriptParseCache, err = scriptEvict(true); err != nil {
		return nil, err
	}

	// A6: telemetry off vs on, on the compiled class (the fastest grafts,
	// so the per-invocation counter cost is largest in relative terms).
	// Instrumentation is a load-time decision, so one harness is loaded
	// raw and one instrumented, then the timed rounds alternate between
	// them: measuring the two sides back to back instead of in separate
	// windows cancels the clock drift that otherwise dwarfs a 2% effect.
	wasOn := telemetry.Enabled()
	defer telemetry.SetEnabled(wasOn)
	telemetry.SetEnabled(false)
	hOff, err := newEvictHarness(cfg, tech.CompiledUnsafe, false, 0)
	if err != nil {
		return nil, err
	}
	defer hOff.closer()
	gOff, err := tech.Load(tech.CompiledUnsafe, grafts.MD5, mem.New(grafts.MDMemSize), tech.Options{VM: cfg.VM})
	if err != nil {
		return nil, err
	}
	mdOff, err := grafts.NewMD5Graft(gOff)
	if err != nil {
		return nil, err
	}
	telemetry.SetEnabled(true)
	telemetry.ResetMetrics()
	hOn, err := newEvictHarness(cfg, tech.CompiledUnsafe, false, 0)
	if err != nil {
		return nil, err
	}
	defer hOn.closer()
	gOn, err := tech.Load(tech.CompiledUnsafe, grafts.MD5, mem.New(grafts.MDMemSize), tech.Options{VM: cfg.VM})
	if err != nil {
		return nil, err
	}
	mdOn, err := grafts.NewMD5Graft(gOn)
	if err != nil {
		return nil, err
	}
	telemetry.SetEnabled(wasOn)

	// A 2% effect on a ~250ns call is ~5ns, so this pair gets more
	// rounds than the other ablations; at ~250ns per invocation the
	// whole comparison still costs well under 100ms.
	evictIters := max(cfg.EvictIters, 5000)
	for _, h := range []*evictHarness{hOff, hOn} {
		for i := 0; i < 16; i++ {
			if err := h.invoke(); err != nil {
				return nil, err
			}
		}
	}
	for r := 0; r < max(cfg.Runs, 10); r++ {
		for _, side := range []struct {
			h    *evictHarness
			best *time.Duration
		}{{hOff, &res.EvictTelemetryOff}, {hOn, &res.EvictTelemetryOn}} {
			t0 := time.Now()
			for i := 0; i < evictIters; i++ {
				if err := side.h.invoke(); err != nil {
					return nil, err
				}
			}
			d := time.Since(t0) / time.Duration(evictIters)
			if *side.best == 0 || d < *side.best {
				*side.best = d
			}
		}
	}
	for r := 0; r < max(cfg.Runs/2, 6); r++ {
		for _, side := range []struct {
			h    *grafts.MD5Graft
			best *time.Duration
		}{{mdOff, &res.MD5TelemetryOff}, {mdOn, &res.MD5TelemetryOn}} {
			if err := side.h.Reset(); err != nil {
				return nil, err
			}
			t0 := time.Now()
			if _, err := side.h.Write(data); err != nil {
				return nil, err
			}
			got, err := side.h.Sum()
			d := time.Since(t0)
			if err != nil {
				return nil, err
			}
			if got != want {
				return nil, fmt.Errorf("bench: telemetry ablation wrong digest")
			}
			if *side.best == 0 || d < *side.best {
				*side.best = d
			}
		}
	}

	// A7: full observability stack vs metrics alone, interleaved like
	// A6. The profiler is a load-time attachment (tech.Load hands the
	// engine its scope while a profile is installed), so the full-stack
	// harness is loaded with a profiler installed; span recording is
	// enabled for the whole timed window. The compiled eviction path has
	// no sampling hook and no span emit point, so the pair demonstrates
	// the stack stays off that hot path; the baseline side shares the
	// window safely for the same reason.
	telemetry.SetEnabled(true)
	if _, err := telemetry.EnableProfiler(telemetry.DefaultProfileInterval); err != nil {
		return nil, err
	}
	hFull, err := newEvictHarness(cfg, tech.CompiledUnsafe, false, 0)
	if err != nil {
		telemetry.DisableProfiler()
		return nil, err
	}
	defer hFull.closer()
	gVMProf, err := tech.Load(tech.Bytecode, grafts.MD5, mem.New(grafts.MDMemSize), tech.Options{VM: cfg.VM})
	if err != nil {
		telemetry.DisableProfiler()
		return nil, err
	}
	mdVMProf, err := grafts.NewMD5Graft(gVMProf)
	if err != nil {
		telemetry.DisableProfiler()
		return nil, err
	}
	telemetry.DisableProfiler()
	gVMPlain, err := tech.Load(tech.Bytecode, grafts.MD5, mem.New(grafts.MDMemSize), tech.Options{VM: cfg.VM})
	if err != nil {
		return nil, err
	}
	mdVMPlain, err := grafts.NewMD5Graft(gVMPlain)
	if err != nil {
		return nil, err
	}
	telemetry.SetEnabled(wasOn)

	if _, err := telemetry.EnableProfiler(telemetry.DefaultProfileInterval); err != nil {
		return nil, err
	}
	telemetry.EnableSpans(1 << 12)
	defer func() {
		telemetry.DisableSpans()
		telemetry.DisableProfiler()
	}()
	for _, h := range []*evictHarness{hOn, hFull} {
		for i := 0; i < 16; i++ {
			if err := h.invoke(); err != nil {
				return nil, err
			}
		}
	}
	for r := 0; r < max(cfg.Runs, 10); r++ {
		for _, side := range []struct {
			h    *evictHarness
			best *time.Duration
		}{{hOn, &res.EvictObsBase}, {hFull, &res.EvictObsFull}} {
			t0 := time.Now()
			for i := 0; i < evictIters; i++ {
				if err := side.h.invoke(); err != nil {
					return nil, err
				}
			}
			d := time.Since(t0) / time.Duration(evictIters)
			if *side.best == 0 || d < *side.best {
				*side.best = d
			}
		}
	}
	for r := 0; r < max(cfg.Runs/2, 6); r++ {
		for _, side := range []struct {
			h    *grafts.MD5Graft
			best *time.Duration
		}{{mdVMPlain, &res.MD5VMProfOff}, {mdVMProf, &res.MD5VMProfOn}} {
			if err := side.h.Reset(); err != nil {
				return nil, err
			}
			t0 := time.Now()
			if _, err := side.h.Write(data); err != nil {
				return nil, err
			}
			got, err := side.h.Sum()
			d := time.Since(t0)
			if err != nil {
				return nil, err
			}
			if got != want {
				return nil, fmt.Errorf("bench: profiler ablation wrong digest")
			}
			if *side.best == 0 || d < *side.best {
				*side.best = d
			}
		}
	}
	return res, nil
}

// newEvictHarnessWith builds the Table 2 scenario around an already
// loaded graft (so the caller controls load options like fuel).
func newEvictHarnessWith(cfg Config, g tech.Graft, m *mem.Memory) (*evictHarness, error) {
	h := &evictHarness{g: g, closer: func() {}}
	clock := &vclock.Clock{}
	pager, err := kernel.NewPager(kernel.PagerConfig{
		Frames: cfg.Frames, Mem: m, NodeBase: grafts.PELRUNodeBase,
	}, clock)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Frames; i++ {
		if _, err := pager.Access(kernel.PageID(100 + i)); err != nil {
			return nil, err
		}
	}
	hot := grafts.NewHotList(m)
	hotPages := make([]kernel.PageID, cfg.HotListLen)
	for i := range hotPages {
		hotPages[i] = kernel.PageID(500000 + i)
	}
	hot.Set(hotPages)
	h.headAddr = pager.HeadAddr()
	h.wantPage = 100
	h.call = tech.ResolveDirect(g, "evict")
	return h, nil
}

// Table renders both ablations.
func (r *AblationResult) Table() *stats.Table {
	t := &stats.Table{
		Title:  "Ablations: NIL checks (§5.4), SFI read protection (§5.5), preemption (§4), telemetry",
		Header: []string{"variant", "time", "vs sibling"},
		Caption: "Paper: explicit NIL checks took Linux Modula-3 from ~1.1x to 2.5x of C on\n" +
			"this graft; Omniware's missing read protection flattered its MD5 number.\n" +
			"Fuel metering is the repo's preemption mechanism; its cost per eviction is\n" +
			"within run-to-run noise on both metered engines. The telemetry rows hold\n" +
			"the observability layer to its <=2% budget (docs/observability.md); the\n" +
			"profiler/span rows extend that budget to the full stack — the compiled hot\n" +
			"path carries no sampling hook, bytecode MD5 pays the fuel-sampling tick.",
	}
	rel := func(a, b time.Duration) string {
		if b == 0 {
			return "N.A."
		}
		return fmt.Sprintf("%.2fx", float64(a)/float64(b))
	}
	t.AddRow("eviction, checked (trap NIL)", stats.FormatDuration(r.EvictSafe), "1.00x")
	t.AddRow("eviction, checked + explicit NIL", stats.FormatDuration(r.EvictSafeNil), rel(r.EvictSafeNil, r.EvictSafe))
	t.AddRow(fmt.Sprintf("MD5 %dKB, SFI write/jump", r.MD5Bytes>>10), stats.FormatDuration(r.MD5SFI), "1.00x")
	t.AddRow(fmt.Sprintf("MD5 %dKB, SFI + read masking", r.MD5Bytes>>10), stats.FormatDuration(r.MD5SFIFull), rel(r.MD5SFIFull, r.MD5SFI))
	t.AddRow("eviction, bytecode VM unmetered", stats.FormatDuration(r.VMUnmetered), "1.00x")
	t.AddRow("eviction, bytecode VM + fuel", stats.FormatDuration(r.VMMetered), rel(r.VMMetered, r.VMUnmetered))
	t.AddRow("eviction, runtime codegen unmetered", stats.FormatDuration(r.NativeUnmetered), "1.00x")
	t.AddRow("eviction, runtime codegen + fuel", stats.FormatDuration(r.NativeMetered), rel(r.NativeMetered, r.NativeUnmetered))
	t.AddRow(fmt.Sprintf("MD5 %dKB, vm baseline interp", r.MD5Bytes>>10), stats.FormatDuration(r.VMBaselineMD5), "1.00x")
	t.AddRow(fmt.Sprintf("MD5 %dKB, vm opt translator", r.MD5Bytes>>10), stats.FormatDuration(r.VMOptMD5), rel(r.VMOptMD5, r.VMBaselineMD5))
	t.AddRow(fmt.Sprintf("MD5 %dKB, vm opt - fusion", r.MD5Bytes>>10), stats.FormatDuration(r.VMNoFuseMD5), rel(r.VMNoFuseMD5, r.VMBaselineMD5))
	t.AddRow(fmt.Sprintf("MD5 %dKB, vm opt - block fuel", r.MD5Bytes>>10), stats.FormatDuration(r.VMPerInstrMD5), rel(r.VMPerInstrMD5, r.VMBaselineMD5))
	t.AddRow("eviction, Tcl per-eval re-parse", stats.FormatDuration(r.ScriptReparse), "1.00x")
	t.AddRow("eviction, Tcl + parse cache", stats.FormatDuration(r.ScriptParseCache), rel(r.ScriptParseCache, r.ScriptReparse))
	t.AddRow("eviction, compiled, telemetry off", stats.FormatDuration(r.EvictTelemetryOff), "1.00x")
	t.AddRow("eviction, compiled, telemetry on", stats.FormatDuration(r.EvictTelemetryOn), rel(r.EvictTelemetryOn, r.EvictTelemetryOff))
	t.AddRow(fmt.Sprintf("MD5 %dKB, compiled, telemetry off", r.MD5Bytes>>10), stats.FormatDuration(r.MD5TelemetryOff), "1.00x")
	t.AddRow(fmt.Sprintf("MD5 %dKB, compiled, telemetry on", r.MD5Bytes>>10), stats.FormatDuration(r.MD5TelemetryOn), rel(r.MD5TelemetryOn, r.MD5TelemetryOff))
	t.AddRow("eviction, compiled, metrics only", stats.FormatDuration(r.EvictObsBase), "1.00x")
	t.AddRow("eviction, compiled, + profiler + spans", stats.FormatDuration(r.EvictObsFull), rel(r.EvictObsFull, r.EvictObsBase))
	t.AddRow(fmt.Sprintf("MD5 %dKB, vm opt, profiler off", r.MD5Bytes>>10), stats.FormatDuration(r.MD5VMProfOff), "1.00x")
	t.AddRow(fmt.Sprintf("MD5 %dKB, vm opt, profiler on", r.MD5Bytes>>10), stats.FormatDuration(r.MD5VMProfOn), rel(r.MD5VMProfOn, r.MD5VMProfOff))
	return t
}
