package bench

import (
	"fmt"
	"time"

	"graftlab/internal/grafts"
	"graftlab/internal/lifecycle"
	"graftlab/internal/mem"
	"graftlab/internal/stats"
	"graftlab/internal/tech"
)

// The swap-under-load experiment prices the live-deployment machinery:
// what does routing every invocation through a versioned lifecycle slot
// cost over calling the graft directly, and what does an ongoing stream
// of hot swaps add on top? Three modes per technology:
//
//   - direct: the raw graft invocation — the no-lifecycle floor every
//     other table measures.
//   - slot: the same invocation through lifecycle.Slot's optimistic
//     revalidation path, with a stable incumbent. The delta over direct
//     is the steady-state toll of being swappable at all.
//   - slot-swap: the slot while a deployment churn loop stages and
//     promotes a new version every swapEvery invocations. The delta
//     over slot is the amortized cost of the swaps themselves plus the
//     revalidation retries they induce.
//
// The paper's cheap-crossing thesis has a lifecycle corollary: if the
// boundary is already a procedure call, making it versioned must not
// reintroduce a protection-domain-sized toll. This table is that claim,
// measured.

// swapEvery is the churn period of the slot-swap mode: one
// Stage+Promote per this many invocations.
const swapEvery = 64

// swapTechs are the classes measured: the fastest native column, the
// loadable bytecode headline, and its verified-native AOT variant.
var swapTechs = []tech.ID{tech.CompiledUnsafe, tech.Bytecode, tech.AOT}

// swapMinSample: per-op times here are ns-scale; runs shorter than this
// are timer noise, so the measured loop repeats the op block until one
// run covers at least this much wall time (same guard as pktfilter-batch).
const swapMinSample = 2 * time.Millisecond

// SwapCell is one (technology, mode) measurement.
type SwapCell struct {
	// Mode is "direct", "slot", or "slot-swap".
	Mode   string        `json:"mode"`
	PerOp  time.Duration `json:"per_op_ns"`
	RelStd float64       `json:"rel_std"`
	N      int           `json:"n,omitempty"`
	P50    time.Duration `json:"p50,omitempty"`
	P95    time.Duration `json:"p95,omitempty"`
	P99    time.Duration `json:"p99,omitempty"`
	// Overhead is PerOp relative to the same row's direct cell.
	Overhead float64 `json:"overhead"`
	// Swaps is the number of Stage+Promote cycles executed inside the
	// measured runs (slot-swap mode only).
	Swaps uint64 `json:"swaps,omitempty"`
}

// SwapRow is one technology line.
type SwapRow struct {
	Tech      string     `json:"tech"`
	PaperName string     `json:"paper_name"`
	Cells     []SwapCell `json:"cells"`
}

// SwapResult is the swap-under-load experiment.
type SwapResult struct {
	// Ops is the invocation count of one measured run.
	Ops       int       `json:"ops"`
	SwapEvery int       `json:"swap_every"`
	Rows      []SwapRow `json:"rows"`
}

// swapBenchFrame writes one matching UDP frame into the filter's buffer
// so every measured invocation takes the accept path.
func swapBenchFrame(m *mem.Memory, port uint16) {
	for i := uint32(0); i < 60; i++ {
		m.St8U(grafts.PFBufAddr+i, 0)
	}
	m.St8U(grafts.PFBufAddr+12, 0x08)
	m.St8U(grafts.PFBufAddr+13, 0x00)
	m.St8U(grafts.PFBufAddr+23, 17)
	m.St8U(grafts.PFBufAddr+36, uint32(port>>8))
	m.St8U(grafts.PFBufAddr+37, uint32(port&0xff))
}

// swapBenchPrep is the deploy-time prep of every version: filter
// configured and one matching frame staged in the engine's buffer.
func swapBenchPrep(m *mem.Memory) error {
	grafts.ConfigurePacketFilter(m, 5001)
	swapBenchFrame(m, 5001)
	return nil
}

// RunSwapUnderLoad measures lifecycle-slot overhead per technology.
func RunSwapUnderLoad(cfg Config) (*SwapResult, error) {
	ops := cfg.EvictIters / 10
	if ops < 200 {
		ops = 200
	}
	res := &SwapResult{Ops: ops, SwapEvery: swapEvery}

	for _, id := range swapTechs {
		row := SwapRow{Tech: string(id), PaperName: tech.PaperName(id)}
		runs := cfg.Runs

		// measureMode times one run of `ops` invocations through op,
		// repeating the block until a run is long enough to trust.
		measureMode := func(mode string, op func() error) (SwapCell, error) {
			// Calibrate: one untimed block sizes the timed sample so each
			// measurement covers at least swapMinSample of wall time.
			t0 := time.Now()
			for i := 0; i < ops; i++ {
				if err := op(); err != nil {
					return SwapCell{}, err
				}
			}
			iters := 1
			if dt := time.Since(t0); dt > 0 && dt < swapMinSample {
				iters = int(swapMinSample/dt) + 1
				if iters > 500 {
					iters = 500
				}
			}
			s, err := measureSeries(cfg.EffectiveWarmup(), runs, func() (time.Duration, error) {
				t0 := time.Now()
				for i := 0; i < ops*iters; i++ {
					if err := op(); err != nil {
						return 0, err
					}
				}
				return time.Since(t0) / time.Duration(ops*iters), nil
			})
			if err != nil {
				return SwapCell{}, err
			}
			cell := SwapCell{
				Mode:  mode,
				PerOp: s.Mean, RelStd: s.RelStd, N: s.N,
				P50: s.P50, P95: s.P95, P99: s.P99,
			}
			if len(row.Cells) > 0 && row.Cells[0].PerOp > 0 {
				cell.Overhead = float64(s.Mean) / float64(row.Cells[0].PerOp)
			} else {
				cell.Overhead = 1
			}
			return cell, nil
		}

		// direct: the raw graft, no lifecycle.
		g, err := tech.Load(id, grafts.PacketFilter, mem.New(grafts.PFMemSize), tech.Options{VM: cfg.VM})
		if err != nil {
			return nil, fmt.Errorf("swap-under-load %s: %w", id, err)
		}
		if err := swapBenchPrep(g.Memory()); err != nil {
			return nil, err
		}
		cell, err := measureMode("direct", func() error {
			v, err := g.Invoke("filter", 60)
			if err == nil && v != 1 {
				err = fmt.Errorf("filter dropped the staged frame")
			}
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("swap-under-load %s/direct: %w", id, err)
		}
		row.Cells = append(row.Cells, cell)

		// newSlot builds a fresh slot over two cached engines (artifact
		// versions alternate between them, so swaps never pay a load).
		newSlot := func() (*lifecycle.Slot, error) {
			carriers := map[uint64]lifecycle.Carrier{}
			load := func(a tech.Artifact) (lifecycle.Carrier, error) {
				key := a.Version % 2
				if c, ok := carriers[key]; ok {
					return c, nil
				}
				eng, err := tech.Load(id, grafts.PacketFilter, mem.New(grafts.PFMemSize), tech.Options{VM: cfg.VM})
				if err != nil {
					return nil, err
				}
				c := lifecycle.Single(eng)
				carriers[key] = c
				return c, nil
			}
			s := lifecycle.NewSlot("bench", id, load)
			if err := s.Activate(tech.NewArtifact(grafts.PacketFilter, 1), swapBenchPrep); err != nil {
				return nil, err
			}
			return s, nil
		}

		// slot: steady-state revalidation path, no churn.
		s, err := newSlot()
		if err != nil {
			return nil, fmt.Errorf("swap-under-load %s/slot: %w", id, err)
		}
		cell, err = measureMode("slot", func() error {
			r, err := s.Invoke("filter", 60)
			if err == nil && r.Value != 1 {
				err = fmt.Errorf("filter dropped the staged frame")
			}
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("swap-under-load %s/slot: %w", id, err)
		}
		row.Cells = append(row.Cells, cell)

		// slot-swap: the slot under deployment churn.
		s, err = newSlot()
		if err != nil {
			return nil, fmt.Errorf("swap-under-load %s/slot-swap: %w", id, err)
		}
		var n, ver, swaps uint64
		ver = 1
		cell, err = measureMode("slot-swap", func() error {
			n++
			if n%swapEvery == 0 {
				ver++
				if err := s.Stage(tech.NewArtifact(grafts.PacketFilter, ver), swapBenchPrep, 0); err != nil {
					return err
				}
				if err := s.Promote(); err != nil {
					return err
				}
				swaps++
			}
			r, err := s.Invoke("filter", 60)
			if err == nil && r.Value != 1 {
				err = fmt.Errorf("filter dropped the staged frame")
			}
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("swap-under-load %s/slot-swap: %w", id, err)
		}
		cell.Swaps = swaps
		row.Cells = append(row.Cells, cell)

		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the experiment.
func (r *SwapResult) Table() *stats.Table {
	t := &stats.Table{
		Title:  fmt.Sprintf("Swap Under Load (per-invocation cost, 1 swap per %d ops)", r.SwapEvery),
		Header: []string{"technology", "direct", "slot", "slot-swap", "swap toll"},
		Caption: "Per-invocation time for the raw graft (direct), the same graft routed\n" +
			"through a versioned lifecycle slot (slot), and the slot while a hot swap\n" +
			"commits every " + fmt.Sprint(r.SwapEvery) + " invocations (slot-swap). (xN) = overhead over direct.\n" +
			"The lifecycle corollary of the cheap-crossing thesis: a procedure-call\n" +
			"boundary stays procedure-call-priced even once it is versioned and\n" +
			"hot-swappable; the churn toll is the slot-swap minus slot delta.",
	}
	for _, row := range r.Rows {
		cells := []string{row.Tech}
		for _, c := range row.Cells {
			cells = append(cells, fmt.Sprintf("%s (x%.2f)", stats.FormatDuration(c.PerOp), c.Overhead))
		}
		if len(row.Cells) == 3 {
			toll := row.Cells[2].PerOp - row.Cells[1].PerOp
			cells = append(cells, stats.FormatDuration(toll)+"/op")
		}
		t.AddRow(cells...)
	}
	return t
}
