package bench

import (
	"fmt"
	"time"

	"graftlab/internal/stats"
)

// This file is the suite runner's spine: the one measurement loop every
// cell goes through (warmup discarded, then N timed runs), and the
// declarative experiment matrix that replaces cmd/graftbench's hand-rolled
// dispatch. Each ExperimentSpec knows how to populate its slot of a
// Report and how to render it, so the CLI, the CSV/REPORT.md exporters,
// and the regression gate all iterate the same list.

// measureSeries times one matrix cell: it runs f warmup+runs times and
// summarizes only the measurement runs — the warmup samples, which paid
// cache fills and frequency ramp, are dropped via stats.DiscardWarmup and
// never reach an exported Sample. f returns the duration of one run.
func measureSeries(warmup, runs int, f func() (time.Duration, error)) (stats.Sample, error) {
	if warmup < 0 {
		warmup = 0
	}
	times := make([]time.Duration, 0, warmup+runs)
	for i := 0; i < warmup+runs; i++ {
		d, err := f()
		if err != nil {
			return stats.Sample{}, err
		}
		times = append(times, d)
	}
	return stats.Summarize(stats.DiscardWarmup(times, warmup)), nil
}

// ExperimentSpec is one row of the declarative experiment matrix.
type ExperimentSpec struct {
	// Name is the -experiment selector ("table5", "pktfilter", ...).
	Name string
	// Title is the human experiment name used in generated reports.
	Title string
	// Concurrent experiments are excluded from "all": their model
	// interleaves goroutines with the single-threaded tables' timing
	// loops, so they run only when selected explicitly.
	Concurrent bool
	// Run populates the experiment's slot in the report.
	Run func(cfg Config, r *Report) error
	// Render returns the experiment's text table, or "" when its slot in
	// the report is empty.
	Render func(r *Report) string
}

// Experiments returns the suite matrix in presentation order.
func Experiments() []ExperimentSpec {
	return []ExperimentSpec{
		{
			Name: "table1", Title: "Table 1: Signal Delivery",
			Run: func(cfg Config, r *Report) error {
				res, err := RunSignal(cfg)
				r.Signal = res
				return err
			},
			Render: func(r *Report) string {
				if r.Signal == nil {
					return ""
				}
				return r.Signal.Table().String()
			},
		},
		{
			Name: "table2", Title: "Table 2: VM Page Eviction",
			Run: func(cfg Config, r *Report) error {
				res, err := RunEviction(cfg)
				r.Evict = res
				return err
			},
			Render: func(r *Report) string {
				if r.Evict == nil {
					return ""
				}
				return r.Evict.Table().String()
			},
		},
		{
			Name: "table3", Title: "Table 3: Page Fault Time",
			Run: func(cfg Config, r *Report) error {
				res, err := RunFault(cfg)
				r.Fault = res
				return err
			},
			Render: func(r *Report) string {
				if r.Fault == nil {
					return ""
				}
				return r.Fault.Table().String()
			},
		},
		{
			Name: "table4", Title: "Table 4: Disk Characteristics",
			Run: func(cfg Config, r *Report) error {
				res, err := RunDisk(cfg)
				r.Disk = res
				return err
			},
			Render: func(r *Report) string {
				if r.Disk == nil {
					return ""
				}
				return r.Disk.Table().String()
			},
		},
		{
			Name: "table5", Title: "Table 5: MD5 Fingerprinting",
			Run: func(cfg Config, r *Report) error {
				res, err := RunMD5(cfg)
				r.MD5 = res
				return err
			},
			Render: func(r *Report) string {
				if r.MD5 == nil {
					return ""
				}
				return r.MD5.Table().String()
			},
		},
		{
			Name: "table6", Title: "Table 6: Logical Disk",
			Run: func(cfg Config, r *Report) error {
				res, err := RunLD(cfg)
				r.LD = res
				return err
			},
			Render: func(r *Report) string {
				if r.LD == nil {
					return ""
				}
				return r.LD.Table().String()
			},
		},
		{
			Name: "figure1", Title: "Figure 1: Upcall Break-Even",
			Run: func(cfg Config, r *Report) error {
				// Figure 1 is derived from the Table 2 measurement; reuse
				// it when table2 already ran in this invocation.
				ev := r.Evict
				if ev == nil {
					var err error
					if ev, err = RunEviction(cfg); err != nil {
						return err
					}
				}
				fig, err := RunFigure1(cfg, ev)
				r.Figure1 = fig
				return err
			},
			Render: func(r *Report) string {
				if r.Figure1 == nil {
					return ""
				}
				return r.Figure1.Table().String()
			},
		},
		{
			Name: "pktfilter", Title: "Packet Filter",
			Run: func(cfg Config, r *Report) error {
				res, err := RunPacketFilter(cfg)
				r.PacketFilter = res
				return err
			},
			Render: func(r *Report) string {
				if r.PacketFilter == nil {
					return ""
				}
				return r.PacketFilter.Table().String()
			},
		},
		{
			Name: "pktfilter-batch", Title: "Batched Packet Filter",
			Run: func(cfg Config, r *Report) error {
				res, err := RunPacketFilterBatch(cfg)
				r.PFBatch = res
				return err
			},
			Render: func(r *Report) string {
				if r.PFBatch == nil {
					return ""
				}
				return r.PFBatch.Table().String()
			},
		},
		{
			Name: "swap-under-load", Title: "Swap Under Load",
			Run: func(cfg Config, r *Report) error {
				res, err := RunSwapUnderLoad(cfg)
				r.Swap = res
				return err
			},
			Render: func(r *Report) string {
				if r.Swap == nil {
					return ""
				}
				return r.Swap.Table().String()
			},
		},
		{
			Name: "ablation", Title: "Ablations",
			Run: func(cfg Config, r *Report) error {
				res, err := RunAblation(cfg)
				r.Ablation = res
				return err
			},
			Render: func(r *Report) string {
				if r.Ablation == nil {
					return ""
				}
				return r.Ablation.Table().String()
			},
		},
		{
			Name: "scale", Title: "Table 7: Multicore Graft Throughput",
			Concurrent: true,
			Run: func(cfg Config, r *Report) error {
				res, err := RunScale(cfg)
				r.Scale = res
				return err
			},
			Render: func(r *Report) string {
				if r.Scale == nil {
					return ""
				}
				return r.Scale.Table().String()
			},
		},
	}
}

// FindExperiment returns the spec for name, or an error naming the valid
// selectors.
func FindExperiment(name string) (ExperimentSpec, error) {
	for _, s := range Experiments() {
		if s.Name == name {
			return s, nil
		}
	}
	return ExperimentSpec{}, fmt.Errorf("unknown experiment %q", name)
}
