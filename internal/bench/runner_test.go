package bench

import (
	"testing"
	"time"
)

// TestMeasureSeriesExcludesWarmup pins the suite's core statistical
// contract: warmup runs execute but never reach the exported Sample.
// The fake cell is slow for exactly the warmup runs; if any leaked into
// the summary, Max (and the mean) would betray it.
func TestMeasureSeriesExcludesWarmup(t *testing.T) {
	const warmup, runs = 3, 5
	calls := 0
	s, err := measureSeries(warmup, runs, func() (time.Duration, error) {
		calls++
		if calls <= warmup {
			return time.Second, nil // cold: cache fills, frequency ramp
		}
		return time.Millisecond, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != warmup+runs {
		t.Fatalf("f called %d times, want %d", calls, warmup+runs)
	}
	if s.N != runs {
		t.Fatalf("Sample.N = %d, want %d measurement runs (warmup leaked in)", s.N, runs)
	}
	if s.Max != time.Millisecond || s.Mean != time.Millisecond {
		t.Fatalf("warmup sample leaked into summary: %+v", s)
	}
}

func TestMeasureSeriesNegativeWarmupClamped(t *testing.T) {
	s, err := measureSeries(-2, 3, func() (time.Duration, error) { return time.Microsecond, nil })
	if err != nil || s.N != 3 {
		t.Fatalf("s=%+v err=%v", s, err)
	}
}

// TestRowsExcludeWarmupRuns drives a real experiment and checks that the
// per-row N is the measurement count, not warmup+measurement: the
// whole-suite restatement of the contract above.
func TestRowsExcludeWarmupRuns(t *testing.T) {
	cfg := tiny()
	cfg.WarmupRuns = 2
	res, err := RunMD5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.N <= 0 || r.N > cfg.Runs {
			t.Errorf("%s: N = %d, want 1..%d (warmup excluded)", r.Tech, r.N, cfg.Runs)
		}
	}
}

func TestEffectiveWarmupDefaults(t *testing.T) {
	if got := Default().EffectiveWarmup(); got < 3 {
		t.Errorf("paper-scale warmup = %d, want >= 3", got)
	}
	if got := Quick().EffectiveWarmup(); got < 1 {
		t.Errorf("quick-scale warmup = %d, want >= 1", got)
	}
	var zero Config
	if got := zero.EffectiveWarmup(); got < 1 {
		t.Errorf("zero-value warmup = %d, want >= 1", got)
	}
}

// TestExperimentMatrix pins the declarative matrix: every selector the
// CLI documents resolves, "scale" is the only concurrent experiment, and
// an unknown name errors.
func TestExperimentMatrix(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table4", "table5",
		"table6", "figure1", "pktfilter", "pktfilter-batch", "swap-under-load",
		"ablation", "scale"}
	specs := Experiments()
	if len(specs) != len(want) {
		t.Fatalf("matrix has %d experiments, want %d", len(specs), len(want))
	}
	for i, name := range want {
		if specs[i].Name != name {
			t.Errorf("matrix[%d] = %q, want %q", i, specs[i].Name, name)
		}
		if specs[i].Concurrent != (name == "scale") {
			t.Errorf("%s: Concurrent = %v", name, specs[i].Concurrent)
		}
		if specs[i].Run == nil || specs[i].Render == nil || specs[i].Title == "" {
			t.Errorf("%s: incomplete spec", name)
		}
	}
	if _, err := FindExperiment("table5"); err != nil {
		t.Error(err)
	}
	if _, err := FindExperiment("table99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestExperimentSpecRoundTrip runs one spec through Run+Render and checks
// the report slot and the rendered table line up.
func TestExperimentSpecRoundTrip(t *testing.T) {
	spec, err := FindExperiment("table5")
	if err != nil {
		t.Fatal(err)
	}
	r := &Report{}
	if spec.Render(r) != "" {
		t.Error("Render of empty slot should be empty")
	}
	if err := spec.Run(tiny(), r); err != nil {
		t.Fatal(err)
	}
	if r.MD5 == nil {
		t.Fatal("Run did not populate the report slot")
	}
	if out := spec.Render(r); out == "" {
		t.Error("Render of populated slot is empty")
	}
}
