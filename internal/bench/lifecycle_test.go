package bench

import (
	"testing"
)

func TestRunSwapUnderLoadShape(t *testing.T) {
	res, err := RunSwapUnderLoad(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops < 200 || res.SwapEvery != swapEvery {
		t.Fatalf("ops=%d swapEvery=%d", res.Ops, res.SwapEvery)
	}
	if len(res.Rows) != len(swapTechs) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(swapTechs))
	}
	modes := []string{"direct", "slot", "slot-swap"}
	for _, row := range res.Rows {
		if len(row.Cells) != len(modes) {
			t.Fatalf("%s: %d cells, want %d", row.Tech, len(row.Cells), len(modes))
		}
		for i, c := range row.Cells {
			if c.Mode != modes[i] {
				t.Fatalf("%s cell %d mode %q, want %q", row.Tech, i, c.Mode, modes[i])
			}
			if c.PerOp <= 0 {
				t.Fatalf("%s/%s: per-op %v", row.Tech, c.Mode, c.PerOp)
			}
			if c.Overhead <= 0 {
				t.Fatalf("%s/%s: overhead %v", row.Tech, c.Mode, c.Overhead)
			}
		}
		if row.Cells[0].Overhead != 1 {
			t.Fatalf("%s: direct overhead %v, want 1", row.Tech, row.Cells[0].Overhead)
		}
		if row.Cells[2].Swaps == 0 {
			t.Fatalf("%s: slot-swap mode executed no swaps", row.Tech)
		}
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}

	// The experiment flows through the exporters and gates itself cleanly.
	r := &Report{Swap: res}
	cells := Flatten(r, 0)
	perMode := 0
	for _, c := range cells {
		if c.Experiment == "swap-under-load" {
			perMode++
		}
	}
	if want := len(swapTechs) * len(modes); perMode != want {
		t.Fatalf("flattened %d swap cells, want %d", perMode, want)
	}
	cmp := CompareReports(r, r, CompareOptions{Tolerance: 0.45})
	if regs := cmp.Regressions(); len(regs) != 0 {
		t.Fatalf("self-comparison regressed: %v", regs)
	}
	if cmp.Compared() != len(swapTechs)*len(modes) {
		t.Fatalf("gated %d cells, want %d", cmp.Compared(), len(swapTechs)*len(modes))
	}
}
