package upcall

import (
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"
)

// Table 1 methodology, verbatim from §5.3: a child process registers
// handlers for a group of twenty signals and suspends itself; the parent
// posts the twenty signals and wakes it; the child handles them and
// suspends again. The same trial with the child ignoring the signals is
// subtracted, and the difference divided by the batch size is the
// per-signal handling time — the paper's proxy for an upcall.
//
// The child is this same executable re-executed with GRAFTLAB_SIGNAL_CHILD
// set; programs embedding the measurement call SignalChildMain early in
// main (it is a no-op unless the variable is set).

// signalChildEnv selects child mode: "handle" or "ignore".
const signalChildEnv = "GRAFTLAB_SIGNAL_CHILD"

// signalBatchEnv carries the batch size to the child.
const signalBatchEnv = "GRAFTLAB_SIGNAL_BATCH"

// DefaultSignalBatch matches the paper's twenty signals.
const DefaultSignalBatch = 20

// batchSignals returns n distinct real-time signals. Linux real-time
// signals queue rather than coalesce, and none are used by the Go
// runtime, so delivery counts are exact.
func batchSignals(n int) []syscall.Signal {
	sigs := make([]syscall.Signal, n)
	for i := range sigs {
		sigs[i] = syscall.Signal(36 + i) // SIGRTMIN+2 onwards
	}
	return sigs
}

// SignalChildMain turns the current process into the measurement child if
// GRAFTLAB_SIGNAL_CHILD is set; otherwise it returns immediately. Call it
// first thing in main.
func SignalChildMain() {
	mode := os.Getenv(signalChildEnv)
	if mode == "" {
		return
	}
	batch := DefaultSignalBatch
	if s := os.Getenv(signalBatchEnv); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			batch = v
		}
	}
	sigs := batchSignals(batch)
	pid := syscall.Getpid()
	switch mode {
	case "handle":
		ch := make(chan os.Signal, batch*2)
		osSigs := make([]os.Signal, len(sigs))
		for i, s := range sigs {
			osSigs[i] = s
		}
		signal.Notify(ch, osSigs...)
		for {
			if err := syscall.Kill(pid, syscall.SIGSTOP); err != nil {
				os.Exit(1)
			}
			// Awake: handle exactly one batch, then suspend again.
			for i := 0; i < batch; i++ {
				<-ch
			}
		}
	case "ignore":
		osSigs := make([]os.Signal, len(sigs))
		for i, s := range sigs {
			osSigs[i] = s
		}
		signal.Ignore(osSigs...)
		for {
			if err := syscall.Kill(pid, syscall.SIGSTOP); err != nil {
				os.Exit(1)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown %s mode %q\n", signalChildEnv, mode)
		os.Exit(2)
	}
}

// SignalResult is one Table 1 measurement.
type SignalResult struct {
	Batch     int
	Iters     int
	Handled   time.Duration // total, child handling the batch
	Ignored   time.Duration // total, child ignoring the batch
	PerSignal time.Duration // (Handled-Ignored) / (Batch*Iters)
}

// MeasureSignal runs the Table 1 trial pair. exe is the path of an
// executable that calls SignalChildMain (use os.Executable()).
func MeasureSignal(exe string, batch, iters int) (SignalResult, error) {
	if batch <= 0 || iters <= 0 {
		return SignalResult{}, fmt.Errorf("upcall: batch and iters must be positive")
	}
	handled, err := signalTrial(exe, "handle", batch, iters)
	if err != nil {
		return SignalResult{}, fmt.Errorf("upcall: handled trial: %w", err)
	}
	ignored, err := signalTrial(exe, "ignore", batch, iters)
	if err != nil {
		return SignalResult{}, fmt.Errorf("upcall: ignored trial: %w", err)
	}
	per := (handled - ignored) / time.Duration(batch*iters)
	if per < 0 {
		per = 0 // noise can invert the subtraction on fast machines
	}
	return SignalResult{
		Batch: batch, Iters: iters,
		Handled: handled, Ignored: ignored, PerSignal: per,
	}, nil
}

func signalTrial(exe, mode string, batch, iters int) (time.Duration, error) {
	env := append(os.Environ(),
		signalChildEnv+"="+mode,
		signalBatchEnv+"="+strconv.Itoa(batch),
	)
	pid, err := syscall.ForkExec(exe, []string{exe}, &syscall.ProcAttr{
		Env:   env,
		Files: []uintptr{0, 1, 2},
	})
	if err != nil {
		return 0, err
	}
	// Watchdog: a wedged child must not hang the benchmark.
	watchdog := time.AfterFunc(60*time.Second, func() {
		syscall.Kill(pid, syscall.SIGKILL) //nolint:errcheck
	})
	defer func() {
		watchdog.Stop()
		syscall.Kill(pid, syscall.SIGKILL) //nolint:errcheck
		var ws syscall.WaitStatus
		syscall.Wait4(pid, &ws, 0, nil) //nolint:errcheck
	}()

	waitStopped := func() error {
		for {
			var ws syscall.WaitStatus
			if _, err := syscall.Wait4(pid, &ws, syscall.WUNTRACED, nil); err != nil {
				return err
			}
			if ws.Stopped() {
				return nil
			}
			if ws.Exited() || ws.Signaled() {
				return fmt.Errorf("child died: %v", ws)
			}
		}
	}
	if err := waitStopped(); err != nil {
		return 0, err
	}
	sigs := batchSignals(batch)
	t0 := time.Now()
	for it := 0; it < iters; it++ {
		for _, s := range sigs {
			if err := syscall.Kill(pid, s); err != nil {
				return 0, err
			}
		}
		if err := syscall.Kill(pid, syscall.SIGCONT); err != nil {
			return 0, err
		}
		if err := waitStopped(); err != nil {
			return 0, err
		}
	}
	return time.Since(t0), nil
}
