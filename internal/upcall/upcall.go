// Package upcall models the hardware-protection technology class: the
// extension lives in a user-level server outside the kernel, and every
// invocation pays a protection-domain crossing (§4.1). Two costs matter:
//
//   - The real floor: a synchronous goroutine handoff, measured by
//     MeasureCrossing. This is what an aggressively tuned upcall path
//     could cost on today's machines.
//   - The paper's proxy: OS signal delivery to a child process, measured
//     by MeasureSignal with the paper's exact handled-minus-ignored
//     methodology (Table 1).
//
// Figure 1 needs break-even as a *function* of upcall time, so Domain can
// also impose a calibrated synthetic latency per crossing.
package upcall

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
)

type call struct {
	entry string
	args  []uint32
	reply chan result
}

type result struct {
	val uint32
	err error
}

// Domain runs a graft in a separate goroutine "protection domain"; Invoke
// performs a synchronous upcall into it. Domain implements tech.Graft, so
// a hook point cannot tell a server-hosted graft from an in-kernel one —
// only the latency differs.
type Domain struct {
	inner   tech.Graft
	latency time.Duration
	req     chan call
	quit    chan struct{}
	done    chan struct{}
	once    sync.Once

	// Delivery-fault injection (conformance tests): dropEvery > 0 makes
	// every Nth upcall fail with ErrDelivery before reaching the server,
	// modeling a lost message on the kernel↔server transport. The graft
	// never runs for a dropped call, and the domain stays usable. Both
	// counters are atomic: Invoke may be called from many goroutines
	// (the channel protocol serializes the server side already, and the
	// fault plan must not be the one racy piece of the crossing).
	dropEvery atomic.Uint64
	calls     atomic.Uint64
}

// ErrDelivery is the transport failure injected by FailDelivery: the
// upcall never reached the extension's domain. It is deliberately not a
// *mem.Trap — the graft did not fault, the channel to it did — and
// callers distinguish the two exactly as a kernel distinguishes a dead
// server from a trapping extension.
var ErrDelivery = errors.New("upcall: delivery failure (injected)")

// NewDomain starts a server goroutine around g. latency is added to every
// upcall by spinning, modeling the domain-crossing cost being swept in
// Figure 1 (0 means only the real goroutine-handoff cost is paid).
func NewDomain(g tech.Graft, latency time.Duration) *Domain {
	d := &Domain{
		inner:   g,
		latency: latency,
		req:     make(chan call),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go d.serve()
	return d
}

func (d *Domain) serve() {
	defer close(d.done)
	for {
		select {
		case c := <-d.req:
			v, err := d.inner.Invoke(c.entry, c.args...)
			c.reply <- result{val: v, err: err}
		case <-d.quit:
			return
		}
	}
}

// Invoke performs a synchronous upcall: marshal the request to the server
// domain, wait for the reply, and pay the crossing latency.
func (d *Domain) Invoke(entry string, args ...uint32) (uint32, error) {
	traced := telemetry.TraceEnabled()
	var t0 time.Time
	if traced {
		t0 = time.Now()
	}
	if nth := d.dropEvery.Load(); nth > 0 {
		if d.calls.Add(1)%nth == 0 {
			return 0, ErrDelivery
		}
	}
	if d.latency > 0 {
		spin(d.latency)
	}
	reply := make(chan result, 1)
	select {
	case d.req <- call{entry: entry, args: args, reply: reply}:
	case <-d.done:
		return 0, fmt.Errorf("upcall: domain is closed")
	}
	r := <-reply
	if traced {
		telemetry.Emit(telemetry.EvUpcall, uint64(len(args)),
			uint64(d.latency.Nanoseconds()), uint64(time.Since(t0).Nanoseconds()))
	}
	return r.val, r.err
}

// InvokeSpan implements tech.SpanInvoker: the protection-boundary
// crossing is recorded as an "upcall" child span of ctx, so a traced
// eviction shows the crossing cost nested inside the engine span.
func (d *Domain) InvokeSpan(ctx telemetry.SpanCtx, entry string, args ...uint32) (uint32, error) {
	sp := telemetry.ChildSpan(ctx, "upcall", "upcall")
	if !sp.Active() {
		return d.Invoke(entry, args...)
	}
	v, err := d.Invoke(entry, args...)
	var errBit uint64
	if err != nil {
		errBit = 1
	}
	sp.End(uint64(d.latency.Nanoseconds()), errBit)
	return v, err
}

// Memory exposes the server's graft memory; the kernel marshals inputs
// through it exactly as for in-kernel grafts.
func (d *Domain) Memory() *mem.Memory { return d.inner.Memory() }

// Close shuts the server down and waits for it to exit. Close is
// idempotent; Invoke after Close returns an error.
func (d *Domain) Close() {
	d.once.Do(func() { close(d.quit) })
	<-d.done
}

// Latency reports the synthetic per-upcall latency.
func (d *Domain) Latency() time.Duration { return d.latency }

// FailDelivery arms delivery-fault injection: every nth Invoke fails
// with ErrDelivery without reaching the server (0 disarms).
func (d *Domain) FailDelivery(nth uint64) {
	d.calls.Store(0)
	d.dropEvery.Store(nth)
}

// PoolWrapper adapts NewDomain to tech.PoolConfig.Wrap: the
// domain-per-worker mode, where every pooled instance runs behind its
// own user-level server. N concurrent workers then pay N independent
// protection-domain crossings instead of serializing on one server's
// request channel — the user-level analogue of per-CPU eBPF programs.
func PoolWrapper(latency time.Duration) func(tech.Graft) (tech.Graft, func()) {
	return func(g tech.Graft) (tech.Graft, func()) {
		d := NewDomain(g, latency)
		return d, d.Close
	}
}

// spin busy-waits for d; sleeping is far too coarse for the microsecond
// latencies Figure 1 sweeps.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// MeasureCrossing times a round trip into a Domain running a trivial
// graft, reporting the mean cost of one upcall with no work and no
// synthetic latency. iters should be large enough to amortize timer
// resolution (10k is plenty).
func MeasureCrossing(iters int) (time.Duration, error) {
	src := tech.Source{Name: "noop", GEL: `func main() { return 0; }`}
	g, err := tech.Load(tech.NativeUnsafe, src, mem.New(4096), tech.Options{})
	if err != nil {
		return 0, err
	}
	d := NewDomain(g, 0)
	defer d.Close()
	// Warm up the goroutine pair.
	for i := 0; i < 100; i++ {
		if _, err := d.Invoke("main"); err != nil {
			return 0, err
		}
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := d.Invoke("main"); err != nil {
			return 0, err
		}
	}
	return time.Since(t0) / time.Duration(iters), nil
}
