package upcall

import (
	"os"
	"testing"
	"time"

	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

// TestMain lets this test binary double as the signal-measurement child.
func TestMain(m *testing.M) {
	SignalChildMain()
	os.Exit(m.Run())
}

func loadNoop(t *testing.T) tech.Graft {
	t.Helper()
	g, err := tech.Load(tech.NativeUnsafe, tech.Source{
		Name: "incr", GEL: `func main(a) { return a + 1; }`,
	}, mem.New(4096), tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDomainInvoke(t *testing.T) {
	d := NewDomain(loadNoop(t), 0)
	defer d.Close()
	for i := uint32(0); i < 100; i++ {
		v, err := d.Invoke("main", i)
		if err != nil || v != i+1 {
			t.Fatalf("Invoke(%d) = %d, %v", i, v, err)
		}
	}
}

func TestDomainErrorsPropagate(t *testing.T) {
	d := NewDomain(loadNoop(t), 0)
	defer d.Close()
	if _, err := d.Invoke("nope"); err == nil {
		t.Fatal("expected error for missing entry")
	}
	// Domain must still work after an error.
	if v, err := d.Invoke("main", 1); err != nil || v != 2 {
		t.Fatalf("post-error Invoke = %d, %v", v, err)
	}
}

func TestDomainClose(t *testing.T) {
	d := NewDomain(loadNoop(t), 0)
	d.Close()
	d.Close() // idempotent
	if _, err := d.Invoke("main", 1); err == nil {
		t.Fatal("Invoke after Close should fail")
	}
}

func TestDomainSyntheticLatency(t *testing.T) {
	lat := 200 * time.Microsecond
	d := NewDomain(loadNoop(t), lat)
	defer d.Close()
	if d.Latency() != lat {
		t.Fatalf("Latency = %v", d.Latency())
	}
	const n = 50
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if _, err := d.Invoke("main", 1); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(t0)
	if elapsed < n*lat {
		t.Errorf("%d calls with %v latency took only %v", n, lat, elapsed)
	}
}

func TestDomainIsAGraft(t *testing.T) {
	var _ tech.Graft = (*Domain)(nil)
	d := NewDomain(loadNoop(t), 0)
	defer d.Close()
	if d.Memory() == nil {
		t.Fatal("Memory() = nil")
	}
}

func TestMeasureCrossing(t *testing.T) {
	per, err := MeasureCrossing(2000)
	if err != nil {
		t.Fatal(err)
	}
	if per <= 0 || per > time.Millisecond {
		t.Errorf("crossing time %v outside plausible range", per)
	}
	t.Logf("goroutine upcall crossing: %v", per)
}

func TestMeasureSignal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureSignal(exe, DefaultSignalBatch, 50)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("handled=%v ignored=%v per-signal=%v", res.Handled, res.Ignored, res.PerSignal)
	if res.Handled <= 0 || res.Ignored <= 0 {
		t.Error("trials reported nonpositive totals")
	}
	if res.PerSignal > 10*time.Millisecond {
		t.Errorf("per-signal time %v implausibly large", res.PerSignal)
	}
}

func TestMeasureSignalValidatesArgs(t *testing.T) {
	if _, err := MeasureSignal("/bin/true", 0, 1); err == nil {
		t.Error("batch=0 accepted")
	}
	if _, err := MeasureSignal("/nonexistent-exe", 20, 1); err == nil {
		t.Error("bad exe accepted")
	}
}
