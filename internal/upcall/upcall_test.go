package upcall

import (
	"os"
	"testing"
	"time"

	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

// TestMain lets this test binary double as the signal-measurement child.
func TestMain(m *testing.M) {
	SignalChildMain()
	os.Exit(m.Run())
}

func loadNoop(t *testing.T) tech.Graft {
	t.Helper()
	g, err := tech.Load(tech.NativeUnsafe, tech.Source{
		Name: "incr", GEL: `func main(a) { return a + 1; }`,
	}, mem.New(4096), tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDomainInvoke(t *testing.T) {
	d := NewDomain(loadNoop(t), 0)
	defer d.Close()
	for i := uint32(0); i < 100; i++ {
		v, err := d.Invoke("main", i)
		if err != nil || v != i+1 {
			t.Fatalf("Invoke(%d) = %d, %v", i, v, err)
		}
	}
}

func TestDomainErrorsPropagate(t *testing.T) {
	d := NewDomain(loadNoop(t), 0)
	defer d.Close()
	if _, err := d.Invoke("nope"); err == nil {
		t.Fatal("expected error for missing entry")
	}
	// Domain must still work after an error.
	if v, err := d.Invoke("main", 1); err != nil || v != 2 {
		t.Fatalf("post-error Invoke = %d, %v", v, err)
	}
}

func TestDomainClose(t *testing.T) {
	d := NewDomain(loadNoop(t), 0)
	d.Close()
	d.Close() // idempotent
	if _, err := d.Invoke("main", 1); err == nil {
		t.Fatal("Invoke after Close should fail")
	}
}

func TestDomainSyntheticLatency(t *testing.T) {
	lat := 200 * time.Microsecond
	d := NewDomain(loadNoop(t), lat)
	defer d.Close()
	if d.Latency() != lat {
		t.Fatalf("Latency = %v", d.Latency())
	}
	const n = 50
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if _, err := d.Invoke("main", 1); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(t0)
	if elapsed < n*lat {
		t.Errorf("%d calls with %v latency took only %v", n, lat, elapsed)
	}
}

// TestDomainTrapEquivalence is the boundary's core safety contract: a
// graft that traps in-kernel must surface the *same* *mem.Trap —
// kind, address, and code — when every invocation instead crosses the
// upcall boundary. The wrapper transports the trap; it must not wrap,
// rewrite, or swallow it.
func TestDomainTrapEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		gel   string
		entry string
		args  []uint32
	}{
		{name: "oob-store", entry: "main", args: []uint32{0x20000, 7},
			gel: `func main(a, b) { st32(a, b); return 0; }`},
		{name: "oob-load", entry: "main", args: []uint32{0x40000000},
			gel: `func main(a) { return ld32(a); }`},
		{name: "div-zero", entry: "main", args: []uint32{10, 0},
			gel: `func main(a, b) { return a / b; }`},
		{name: "abort", entry: "main", args: []uint32{9},
			gel: `func main(a) { abort(a); return 0; }`},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			src := tech.Source{Name: c.name, GEL: c.gel}
			direct, err := tech.Load(tech.NativeSafe, src, mem.New(1<<16), tech.Options{})
			if err != nil {
				t.Fatal(err)
			}
			_, directErr := direct.Invoke(c.entry, c.args...)

			inner, err := tech.Load(tech.NativeSafe, src, mem.New(1<<16), tech.Options{})
			if err != nil {
				t.Fatal(err)
			}
			d := NewDomain(inner, 0)
			defer d.Close()
			_, wrappedErr := d.Invoke(c.entry, c.args...)

			dt, ok := directErr.(*mem.Trap)
			if !ok {
				t.Fatalf("direct run did not trap: %v", directErr)
			}
			wt, ok := wrappedErr.(*mem.Trap)
			if !ok {
				t.Fatalf("upcall run did not surface a *mem.Trap: %v", wrappedErr)
			}
			if dt.Kind != wt.Kind || dt.Addr != wt.Addr || dt.Code != wt.Code {
				t.Fatalf("trap diverges across the boundary: direct {%v addr=%#x code=%d}, upcall {%v addr=%#x code=%d}",
					dt.Kind, dt.Addr, dt.Code, wt.Kind, wt.Addr, wt.Code)
			}
			// The boundary must stay usable after transporting a trap.
			if _, err := d.Invoke(c.entry, c.args...); err == nil {
				t.Fatal("second invocation unexpectedly succeeded")
			}
		})
	}
}

// TestFailDelivery covers the injected transport failure: the error is
// ErrDelivery — not a trap, the graft never ran — and disarming
// restores normal service.
func TestFailDelivery(t *testing.T) {
	d := NewDomain(loadNoop(t), 0)
	defer d.Close()
	d.FailDelivery(2)
	for i := 1; i <= 6; i++ {
		v, err := d.Invoke("main", uint32(i))
		if i%2 == 0 {
			if err != ErrDelivery {
				t.Fatalf("call %d: err=%v, want ErrDelivery", i, err)
			}
			continue
		}
		if err != nil || v != uint32(i)+1 {
			t.Fatalf("call %d: %d, %v", i, v, err)
		}
	}
	d.FailDelivery(0)
	for i := 0; i < 4; i++ {
		if _, err := d.Invoke("main", 1); err != nil {
			t.Fatalf("after disarm: %v", err)
		}
	}
}

func TestDomainIsAGraft(t *testing.T) {
	var _ tech.Graft = (*Domain)(nil)
	d := NewDomain(loadNoop(t), 0)
	defer d.Close()
	if d.Memory() == nil {
		t.Fatal("Memory() = nil")
	}
}

func TestMeasureCrossing(t *testing.T) {
	per, err := MeasureCrossing(2000)
	if err != nil {
		t.Fatal(err)
	}
	if per <= 0 || per > time.Millisecond {
		t.Errorf("crossing time %v outside plausible range", per)
	}
	t.Logf("goroutine upcall crossing: %v", per)
}

func TestMeasureSignal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureSignal(exe, DefaultSignalBatch, 50)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("handled=%v ignored=%v per-signal=%v", res.Handled, res.Ignored, res.PerSignal)
	if res.Handled <= 0 || res.Ignored <= 0 {
		t.Error("trials reported nonpositive totals")
	}
	if res.PerSignal > 10*time.Millisecond {
		t.Errorf("per-signal time %v implausibly large", res.PerSignal)
	}
}

func TestMeasureSignalValidatesArgs(t *testing.T) {
	if _, err := MeasureSignal("/bin/true", 0, 1); err == nil {
		t.Error("batch=0 accepted")
	}
	if _, err := MeasureSignal("/nonexistent-exe", 20, 1); err == nil {
		t.Error("bad exe accepted")
	}
}
