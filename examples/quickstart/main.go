// Quickstart: write a graft once, load it under every extension
// technology the paper compares, and watch the same computation run at
// very different speeds with very different protection stories.
package main

import (
	"fmt"
	"time"

	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

// A toy graft: count the primes below n, in GEL and in mini-Tcl.
var primes = tech.Source{
	Name: "primes",
	GEL: `
func isPrime(n) {
	if (n < 2) { return 0; }
	var d = 2;
	while (d * d <= n) {
		if (n % d == 0) { return 0; }
		d = d + 1;
	}
	return 1;
}
func main(n) {
	var count = 0;
	var i = 2;
	while (i < n) {
		count = count + isPrime(i);
		i = i + 1;
	}
	return count;
}`,
	Tcl: `
proc isPrime {n} {
	if {$n < 2} { return 0 }
	set d 2
	while {$d * $d <= $n} {
		if {$n % $d == 0} { return 0 }
		incr d
	}
	return 1
}
proc main {n} {
	set count 0
	set i 2
	while {$i < $n} {
		set count [expr {$count + [isPrime $i]}]
		incr i
	}
	return $count
}`,
}

func main() {
	const n = 2000
	fmt.Printf("primes(%d) under every extension technology:\n\n", n)
	fmt.Printf("%-16s %-32s %10s %12s\n", "technology", "stands in for", "result", "time")

	var base time.Duration
	for _, id := range tech.All {
		limit := uint32(n)
		if id == tech.Script {
			limit = n / 4 // the Tcl class is slow; keep the demo snappy
		}
		g, err := tech.Load(id, primes, mem.New(1<<16), tech.Options{})
		if err != nil {
			fmt.Printf("%-16s load failed: %v\n", id, err)
			continue
		}
		t0 := time.Now()
		v, err := g.Invoke("main", limit)
		elapsed := time.Since(t0)
		if err != nil {
			fmt.Printf("%-16s trapped: %v\n", id, err)
			continue
		}
		if base == 0 {
			base = elapsed
		}
		note := fmt.Sprintf("%v (%.1fx)", elapsed.Round(time.Microsecond), float64(elapsed)/float64(base))
		if limit != n {
			note += fmt.Sprintf("  [n=%d]", limit)
		}
		fmt.Printf("%-16s %-32s %10d %12s\n", id, tech.PaperName(id), v, note)
	}

	// Safety: the same wild store under three policies.
	fmt.Println("\na wild store (address 2^30) under each trust model:")
	wild := tech.Source{Name: "wild", GEL: `func main() { st32(1073741824, 7); return 0; }`}
	for _, id := range []tech.ID{tech.NativeUnsafe, tech.NativeSafe, tech.SFI} {
		g, err := tech.Load(id, wild, mem.New(1<<16), tech.Options{})
		if err != nil {
			fmt.Printf("  %-14s load failed: %v\n", id, err)
			continue
		}
		_, err = g.Invoke("main")
		switch {
		case err == nil:
			fmt.Printf("  %-14s store silently redirected into the sandbox (SFI masking)\n", id)
		default:
			fmt.Printf("  %-14s %v\n", id, err)
		}
	}
}
