package examples

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example and checks for its
// leading output marker — the line a reader sees first. Examples do real
// (simulated) work, so they are skipped under -short; CI's full test
// pass runs them all.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run full simulated workloads")
	}
	cases := []struct {
		dir    string
		marker string
	}{
		{dir: "quickstart", marker: "under every extension technology:"},
		{dir: "pageevict", marker: "TPC-B scan:"},
		{dir: "md5stream", marker: "executable from the modeled disk"},
		{dir: "logicaldisk", marker: "skewed block writes, direct (random I/O):"},
		{dir: "packetfilter", marker: "frames, "},
		{dir: "fastpath", marker: "streaming "},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+c.dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.marker) {
				t.Fatalf("output of %s lacks marker %q:\n%s", c.dir, c.marker, out)
			}
		})
	}
}
