// Example md5stream: the paper's Stream graft. A kernel filter chain
// fingerprints a simulated executable as it is read from the disk model —
// the virus-detection scenario of §3.2 — and the example asks the paper's
// question for each technology: can the fingerprint keep up with the
// disk, or does it add latency?
package main

import (
	"fmt"
	"time"

	"graftlab/internal/disk"
	"graftlab/internal/grafts"
	"graftlab/internal/kernel"
	"graftlab/internal/md5x"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/vclock"
	"graftlab/internal/workload"
)

func main() {
	const fileSize = 1 << 20
	data := make([]byte, fileSize)
	workload.FillPattern(data, 0xE7)
	want := md5x.Of(data)

	// How long does the modeled 1990s disk take to deliver the file?
	clock := &vclock.Clock{}
	dev := disk.New(disk.DefaultGeometry(), clock)
	blocks := uint32(fileSize) / dev.Geometry().BlockSize
	if _, err := dev.Read(0, blocks); err != nil {
		panic(err)
	}
	diskTime := clock.Now()
	fmt.Printf("reading a %d KB executable from the modeled disk: %v\n\n", fileSize>>10, diskTime)

	fmt.Printf("%-16s %12s %10s   %s\n", "technology", "MD5 time", "MD5/disk", "verdict")
	for _, id := range []tech.ID{
		tech.NativeUnsafe, tech.NativeSafe, tech.SFI, tech.SFIFull, tech.Bytecode, tech.Script,
	} {
		input := data
		scale := 1.0
		if id == tech.Script {
			input = data[:32<<10] // measure the Tcl class at 32 KB, scale up
			scale = float64(fileSize) / float64(len(input))
		}
		g, err := tech.Load(id, grafts.MD5, mem.New(grafts.MDMemSize), tech.Options{})
		if err != nil {
			panic(err)
		}
		h, err := grafts.NewMD5Graft(g)
		if err != nil {
			panic(err)
		}
		f := grafts.NewMD5Filter(h)
		chain := kernel.NewChain(nil, f)

		t0 := time.Now()
		for off := 0; off < len(input); off += 64 << 10 {
			end := off + 64<<10
			if end > len(input) {
				end = len(input)
			}
			if _, err := chain.Write(input[off:end]); err != nil {
				panic(err)
			}
		}
		if err := chain.Close(); err != nil {
			panic(err)
		}
		elapsed := time.Duration(float64(time.Since(t0)) * scale)

		digest, _ := f.Digest()
		if scale == 1.0 && digest != want {
			panic(fmt.Sprintf("%s computed wrong fingerprint", id))
		}
		ratio := float64(elapsed) / float64(diskTime)
		verdict := "hides under I/O"
		if ratio > 1 {
			verdict = "slows the read down"
		}
		mark := ""
		if scale != 1 {
			mark = "~"
		}
		fmt.Printf("%-16s %11s%v %10.2f   %s\n", id, mark, elapsed.Round(time.Millisecond), ratio, verdict)
	}
	fmt.Printf("\nfingerprint: %x\n", want)
}
