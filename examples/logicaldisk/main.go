// Example logicaldisk: the paper's Black Box graft. A log-structured
// Logical Disk layer converts an 80/20-skewed random write stream into
// sequential segment writes; the mapping bookkeeping runs as a graft. The
// example shows the I/O time the batching saves on the modeled disk and
// the CPU time each technology spends earning it.
package main

import (
	"fmt"
	"time"

	"graftlab/internal/disk"
	"graftlab/internal/grafts"
	"graftlab/internal/ld"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/vclock"
	"graftlab/internal/workload"
)

const writes = 32768

func main() {
	geo := disk.DefaultGeometry()

	// Baseline: the same stream written in place (random I/O).
	clock := &vclock.Clock{}
	dev := disk.New(geo, clock)
	stream := workload.NewSkewed(geo.Blocks, 42)
	for i := 0; i < writes; i++ {
		if _, err := ld.DirectWrite(dev, stream.Next()); err != nil {
			panic(err)
		}
	}
	directTime := clock.Now()
	fmt.Printf("%d skewed block writes, direct (random I/O): %v of disk time\n\n", writes, directTime)

	fmt.Printf("%-16s %14s %14s %14s %12s\n",
		"technology", "disk time", "I/O saved", "bookkeeping", "CPU/block")
	for _, id := range []tech.ID{
		tech.CompiledUnsafe, tech.CompiledSafe, tech.CompiledSFI,
		tech.NativeUnsafe, tech.Bytecode, tech.Script,
	} {
		n := writes
		scale := 1.0
		if id == tech.Script {
			n = writes / 32
			scale = float64(writes) / float64(n)
		}
		g, err := tech.Load(id, grafts.LDMap, mem.New(grafts.LDMemSize), tech.Options{})
		if err != nil {
			panic(err)
		}
		mapper, err := grafts.NewGraftMapper(g, geo.Blocks)
		if err != nil {
			panic(err)
		}
		clock := &vclock.Clock{}
		l := ld.New(disk.New(geo, clock), mapper, true)
		stream := workload.NewSkewed(geo.Blocks, 42)
		for i := 0; i < n; i++ {
			if err := l.Write(stream.Next()); err != nil {
				panic(err)
			}
		}
		st := l.Stats()
		diskTime := time.Duration(float64(clock.Now()) * scale)
		mapTime := time.Duration(float64(st.MapTime) * scale)
		mark := ""
		if scale != 1 {
			mark = "~"
		}
		fmt.Printf("%-16s %13s%v %14v %13s%v %12v\n",
			id,
			mark, diskTime.Round(time.Millisecond),
			(directTime - diskTime).Round(time.Millisecond),
			mark, mapTime.Round(time.Microsecond),
			(mapTime / writes).Round(time.Nanosecond))
	}

	fmt.Println("\nThe log layer turns ~13ms random writes into ~1ms/16-block sequential")
	fmt.Println("flushes; even interpreted bookkeeping costs microseconds per block —")
	fmt.Println("the paper's point that coarse-grained I/O grafts tolerate slow technologies.")
}
