// Example pageevict: the paper's Prioritization graft end to end. A
// TPC-B-style database server scans b-tree subtrees whose working set
// slightly exceeds physical memory — the access pattern that defeats pure
// LRU — and installs a hot-list eviction graft to protect the pages it is
// about to need. The example prints fault counts and virtual I/O time for
// every extension technology carrying the same graft.
package main

import (
	"fmt"
	"time"

	"graftlab/internal/btree"
	"graftlab/internal/grafts"
	"graftlab/internal/kernel"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/vclock"
)

const (
	frames   = 200
	subtrees = 2
	passes   = 4
	faultSvc = 14 * time.Millisecond
)

func runScan(id tech.ID, useGraft bool) (kernel.PagerStats, time.Duration, error) {
	tree := btree.MustBuild(btree.TPCBConfig())
	m := mem.New(grafts.PEMemSize)
	clock := &vclock.Clock{}
	pager, err := kernel.NewPager(kernel.PagerConfig{
		Frames:    frames,
		FaultTime: faultSvc,
		Mem:       m,
		NodeBase:  grafts.PELRUNodeBase,
	}, clock)
	if err != nil {
		return kernel.PagerStats{}, 0, err
	}
	hot := grafts.NewHotList(m)
	if useGraft {
		g, err := tech.Load(id, grafts.PageEvict, m, tech.Options{})
		if err != nil {
			return kernel.PagerStats{}, 0, err
		}
		pager.SetPolicy(grafts.NewGraftEvictionPolicy(g))
	}
	for p := 0; p < passes; p++ {
		err := tree.Scan(0, subtrees, func(a btree.Access) error {
			if a.HotList != nil {
				hot.Set(a.HotList)
			}
			if _, err := pager.Access(a.Page); err != nil {
				return err
			}
			hot.Remove(a.Page)
			return nil
		})
		if err != nil {
			return kernel.PagerStats{}, 0, err
		}
	}
	return pager.Stats(), clock.Now(), nil
}

func main() {
	fmt.Printf("TPC-B scan: %d passes over %d subtrees, %d frames, %v per fault\n\n",
		passes, subtrees, frames, faultSvc)

	base, baseTime, err := runScan(tech.NativeUnsafe, false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-16s %8s %8s %10s %12s %8s\n",
		"policy", "faults", "hits", "overrides", "I/O time", "saved")
	fmt.Printf("%-16s %8d %8d %10s %12v %8s\n",
		"default LRU", base.Faults, base.Hits, "-", baseTime, "-")

	for _, id := range tech.All {
		st, vt, err := runScan(id, true)
		if err != nil {
			fmt.Printf("%-16s error: %v\n", id, err)
			continue
		}
		saved := float64(base.Faults-st.Faults) / float64(base.Faults) * 100
		fmt.Printf("%-16s %8d %8d %10d %12v %7.1f%%\n",
			id, st.Faults, st.Hits, st.PolicyOverrides, vt, saved)
	}

	fmt.Println("\nEvery technology enforces the same policy — the kernel validates each")
	fmt.Println("proposal — so fault counts match; only the CPU cost of deciding differs")
	fmt.Println("(measure it with: go run ./cmd/graftbench -experiment table2).")
}
