// Example fastpath: §3.2's second Stream-graft shape — "a stream graft
// that takes its input and directs it to an output connection" — and the
// work it cites (the x-kernel fast paths, SPIN's video server, Fall's
// in-kernel data paths). A server streams a 4 MB file from the disk to
// the network. Per 64 KB block the architectures differ in protection-
// boundary crossings and copies:
//
//	user-level copy loop:   2 crossings + 2 copies
//	in-kernel fast path:    0 crossings + 1 copy
//
// and optionally run an MD5 fingerprint graft in the stream. Crossing,
// copy, and graft costs are measured; wire and disk time come from the
// era models. The point the numbers make: on a 1995 wire everything
// hides under I/O (the paper's Table 5 conclusion), while on a modern
// wire the copy loop's crossings are the bottleneck — which is why fast
// paths moved into the kernel.
package main

import (
	"fmt"
	"time"

	"graftlab/internal/disk"
	"graftlab/internal/grafts"
	"graftlab/internal/kernel"
	"graftlab/internal/md5x"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/upcall"
	"graftlab/internal/vclock"
	"graftlab/internal/workload"
)

const (
	fileSize  = 4 << 20
	blockSize = 64 << 10
	blocks    = fileSize / blockSize
)

func wireTime(bitsPerSec int64, n int) time.Duration {
	return time.Duration(int64(n) * 8 * int64(time.Second) / bitsPerSec)
}

func main() {
	data := make([]byte, fileSize)
	workload.FillPattern(data, 0xF5)
	want := md5x.Of(data)

	// Disk time from the 1990s model; two wire generations.
	clock := &vclock.Clock{}
	dev := disk.New(disk.DefaultGeometry(), clock)
	if _, err := dev.Read(0, uint32(fileSize)/dev.Geometry().BlockSize); err != nil {
		panic(err)
	}
	diskTime := clock.Now()
	oldIO := diskTime + wireTime(10_000_000, fileSize) // 10 Mb/s Ethernet
	newIO := wireTime(10_000_000_000, fileSize)        // 10 Gb/s, disk ≈ NVMe noise

	// Measured per-block costs.
	crossing, err := upcall.MeasureCrossing(5000)
	if err != nil {
		panic(err)
	}
	src, dst := make([]byte, blockSize), make([]byte, blockSize)
	t0 := time.Now()
	const copies = 5000
	for i := 0; i < copies; i++ {
		copy(dst, src)
	}
	copyTime := time.Since(t0) / copies

	g, err := tech.Load(tech.CompiledSFI, grafts.MD5, mem.New(grafts.MDMemSize), tech.Options{})
	if err != nil {
		panic(err)
	}
	h, err := grafts.NewMD5Graft(g)
	if err != nil {
		panic(err)
	}
	f := grafts.NewMD5Filter(h)
	chain := kernel.NewChain(nil, f)
	t0 = time.Now()
	for off := 0; off < fileSize; off += blockSize {
		if _, err := chain.Write(data[off : off+blockSize]); err != nil {
			panic(err)
		}
	}
	if err := chain.Close(); err != nil {
		panic(err)
	}
	graftPerBlock := time.Since(t0) / blocks
	if d, _ := f.Digest(); d != want {
		panic("fast path corrupted the stream")
	}

	fmt.Printf("streaming %d MB in %d blocks; measured per block: crossing %v, copy %v, MD5 graft %v\n",
		fileSize>>20, blocks, crossing, copyTime.Round(100*time.Nanosecond), graftPerBlock.Round(time.Microsecond))
	fmt.Printf("I/O time: 1995 disk+10Mb/s wire %v; modern 10Gb/s wire %v\n\n",
		oldIO.Round(time.Millisecond), newIO.Round(time.Millisecond))

	type arch struct {
		name      string
		crossings int
		copyCount int
		graft     time.Duration
	}
	scenarios := []struct {
		title string
		archs []arch
	}{
		{"plain relay (no graft)", []arch{
			{"user-level copy loop", 2, 2, 0},
			{"in-kernel fast path", 0, 1, 0},
		}},
		{"fingerprinting relay (MD5 in stream)", []arch{
			{"user-level copy loop", 2, 2, graftPerBlock},
			{"in-kernel fast path + SFI graft", 0, 1, graftPerBlock},
			{"fast path + upcall fingerprint", 1, 1, graftPerBlock},
		}},
	}
	for _, sc := range scenarios {
		fmt.Println(sc.title + ":")
		fmt.Printf("  %-34s %12s %16s %16s\n", "architecture", "CPU/block", "% of 1995 I/O", "% of modern I/O")
		for _, a := range sc.archs {
			perBlock := time.Duration(a.crossings)*crossing +
				time.Duration(a.copyCount)*copyTime + a.graft
			cpu := perBlock * blocks
			fmt.Printf("  %-34s %12v %15.2f%% %15.1f%%\n",
				a.name, perBlock.Round(100*time.Nanosecond),
				100*float64(cpu)/float64(oldIO),
				100*float64(cpu)/float64(newIO))
		}
		fmt.Println()
	}
	fmt.Println("1995: every architecture hides under I/O (the paper's MD5 conclusion).")
	fmt.Println("Modern wire: the plain user-level loop spends 3x the CPU of the in-kernel")
	fmt.Println("path on crossings and copies — §3.2's fast-path case — and a compute-heavy")
	fmt.Println("filter can no longer hide under I/O at all, inverting Table 5's verdict.")
}
