// Package examples anchors the runnable-example smoke tests. Each
// subdirectory is a standalone main package (run with `go run
// ./examples/<name>`); smoke_test.go builds and runs every one of them
// so a refactor that breaks an example fails `go test ./...`, not a
// reader's first copy-paste.
package examples
