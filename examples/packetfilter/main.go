// Example packetfilter: the extension domain the paper's related work
// opens with (§2). A demultiplexer delivers a 20,000-frame trace to
// endpoints whose filters are grafts; the example compares technologies
// on both correctness (all must agree on every frame) and throughput.
package main

import (
	"fmt"
	"time"

	"graftlab/internal/grafts"
	"graftlab/internal/mem"
	"graftlab/internal/netsim"
	"graftlab/internal/tech"
)

func main() {
	const port = 5001
	trace, err := netsim.GenerateTrace(netsim.DefaultTrace(20000))
	if err != nil {
		panic(err)
	}
	ref := grafts.ReferencePacketFilter(port)
	want := 0
	for _, p := range trace {
		if ref(p) {
			want++
		}
	}
	fmt.Printf("trace: %d frames, %d addressed to UDP port %d\n\n", len(trace), want, port)
	fmt.Printf("%-16s %10s %12s %14s\n", "technology", "matched", "per packet", "packets/sec")

	for _, id := range []tech.ID{
		tech.CompiledUnsafe, tech.CompiledSafe, tech.CompiledSFI,
		tech.NativeUnsafe, tech.Bytecode, tech.Script,
	} {
		frames := trace
		if id == tech.Script {
			frames = trace[:500]
		}
		m := mem.New(grafts.PFMemSize)
		g, err := tech.Load(id, grafts.PacketFilter, m, tech.Options{})
		if err != nil {
			panic(err)
		}
		grafts.ConfigurePacketFilter(m, port)
		d := netsim.NewDemux()
		ep, err := d.Register(fmt.Sprintf("udp:%d", port), g, "filter", grafts.PFBufAddr)
		if err != nil {
			panic(err)
		}
		t0 := time.Now()
		for _, p := range frames {
			if _, err := d.Deliver(p); err != nil {
				panic(err)
			}
		}
		elapsed := time.Since(t0)
		wantHere := 0
		for _, p := range frames {
			if ref(p) {
				wantHere++
			}
		}
		if int(ep.Matched) != wantHere {
			panic(fmt.Sprintf("%s matched %d, want %d", id, ep.Matched, wantHere))
		}
		per := elapsed / time.Duration(len(frames))
		fmt.Printf("%-16s %10d %12v %14.0f\n", id, ep.Matched, per, float64(time.Second)/float64(per))
	}

	fmt.Println("\nEvery technology classifies every frame identically; only the CPU")
	fmt.Println("cost of asking differs. This is why 1990s kernels interpreted packet")
	fmt.Println("filters in tiny domain languages rather than upcalling per frame.")
}
