package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"graftlab/internal/bench"
	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
)

// microConfig keeps CLI tests fast while exercising every experiment path.
func microConfig() bench.Config {
	cfg := bench.Quick()
	cfg.Runs = 2
	cfg.EvictIters = 200
	cfg.MD5Bytes = 8 << 10
	cfg.MD5ScriptBytes = 1 << 10
	cfg.LDWrites = 1024
	cfg.LDScriptWrites = 64
	cfg.SignalIters = 10
	cfg.FaultPages = 64
	cfg.DiskWriteBytes = 128 << 10
	return cfg
}

func TestUnknownExperimentRejected(t *testing.T) {
	if _, err := run(microConfig(), "table99", "", "", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestIndividualExperiments(t *testing.T) {
	cfg := microConfig()
	for _, exp := range []string{"table2", "table3", "table4", "table5", "table6", "ablation", "pktfilter"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if _, err := run(cfg, exp, "", "", true); err != nil {
				t.Fatalf("%s: %v", exp, err)
			}
		})
	}
}

func TestFigure1WritesCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "fig1.csv")
	js := filepath.Join(dir, "results.json")
	if _, err := run(microConfig(), "figure1", csv, js, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(js)
	if err != nil {
		t.Fatal(err)
	}
	var report map[string]any
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := report["figure1"]; !ok {
		t.Fatalf("report lacks figure1: %v", report)
	}
	if report["note"] != "quick-scale" {
		t.Fatalf("note = %v", report["note"])
	}
	host, ok := report["host"].(map[string]any)
	if !ok {
		t.Fatalf("report lacks host info: %v", report)
	}
	if host["goarch"] == "" || host["go_version"] == "" {
		t.Fatalf("incomplete host info: %v", host)
	}
	if _, ok := report["config"]; !ok {
		t.Fatalf("report lacks config: %v", report)
	}
}

func TestDefaultJSONPath(t *testing.T) {
	if got := defaultJSONPath("table5"); got != "BENCH_table5.json" {
		t.Fatalf("defaultJSONPath = %q", got)
	}
}

// TestCheckAgainst pins the CLI end of the regression gate: a matching
// baseline passes, a wildly faster baseline fails, a disjoint or missing
// one errors.
func TestCheckAgainst(t *testing.T) {
	cfg := microConfig()
	report, err := run(cfg, "table5", "", "", true)
	if err != nil {
		t.Fatal(err)
	}
	writeBaseline := func(r *bench.Report) string {
		data, err := r.Encode()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "baseline.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cmp, err := checkAgainst(report, writeBaseline(report), 0.30, 0)
	if err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
	if cmp == nil || cmp.Compared() == 0 {
		t.Fatal("self-comparison gated no cells")
	}
	fast := *report.MD5
	fast.Rows = append([]bench.MD5Row(nil), report.MD5.Rows...)
	for i := range fast.Rows {
		fast.Rows[i].Total /= 100
	}
	if _, err := checkAgainst(report, writeBaseline(&bench.Report{MD5: &fast}), 0.30, 0); err == nil {
		t.Fatal("100x regression passed the gate")
	}
	// A baseline sharing nothing with this run must error, and the error
	// must carry the explicit skip summary rather than failing silently.
	_, err = checkAgainst(report, writeBaseline(&bench.Report{}), 0.30, 0)
	if err == nil {
		t.Fatal("baseline with no comparable metrics accepted")
	}
	if !strings.Contains(err.Error(), "skipped") {
		t.Fatalf("disjoint-baseline error lacks the skip summary: %v", err)
	}
	if _, err := checkAgainst(report, filepath.Join(t.TempDir(), "missing.json"), 0.30, 0); err == nil {
		t.Fatal("missing baseline file accepted")
	}
}

// TestCheckAgainstNoiseTolerated pins the effect-size half of the gate at
// the CLI level: a bad-direction move past the tolerance does NOT fail
// when it sits inside the cells' own variance.
func TestCheckAgainstNoiseTolerated(t *testing.T) {
	noisy := func(total int64) *bench.Report {
		return &bench.Report{
			Config: &bench.Config{Runs: 5},
			MD5: &bench.MD5Result{Bytes: 1 << 20, Rows: []bench.MD5Row{{
				Tech: "compiled-unsafe", Total: time.Duration(total), RelStd: 0.60, N: 5,
			}}},
		}
	}
	base, cur := noisy(100_000_000), noisy(140_000_000)
	data, err := base.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cmp, err := checkAgainst(cur, path, 0.30, 0.8)
	if err != nil {
		t.Fatalf("in-variance move failed the gate: %v", err)
	}
	if got := cmp.Cells[0].Verdict; got != bench.VerdictNoise {
		t.Fatalf("verdict = %q, want noise", got)
	}
}

// TestReportArtifacts pins -report-dir: all three suite artifacts land in
// the directory and are well-formed.
func TestReportArtifacts(t *testing.T) {
	report, err := run(microConfig(), "table5", "", "", true)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "bench-out")
	if err := writeReportArtifacts(dir, report, nil, bench.ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	jdata, err := os.ReadFile(filepath.Join(dir, "results.json"))
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(jdata, &decoded); err != nil {
		t.Fatalf("results.json invalid: %v", err)
	}
	if _, ok := decoded["table5"]; !ok {
		t.Fatalf("results.json lacks table5: %v", decoded)
	}
	cdata, err := os.ReadFile(filepath.Join(dir, "results.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(cdata), "experiment,row,metric,unit,value,n,cv,") {
		t.Fatalf("results.csv header wrong:\n%s", cdata)
	}
	mdata, err := os.ReadFile(filepath.Join(dir, "REPORT.md"))
	if err != nil {
		t.Fatal(err)
	}
	md := string(mdata)
	for _, want := range []string{"# graftlab benchmark report", "warmup", "Table 5"} {
		if !strings.Contains(md, want) {
			t.Fatalf("REPORT.md lacks %q:\n%s", want, md)
		}
	}
}

// TestVMBaselineSelectable pins that the -vm=baseline plumbing reaches the
// vm rows: a baseline-config run must still produce correct results.
func TestVMBaselineSelectable(t *testing.T) {
	cfg := microConfig()
	mode, err := tech.ParseVMMode("baseline")
	if err != nil {
		t.Fatal(err)
	}
	cfg.VM = mode
	if _, err := run(cfg, "table5", "", "", true); err != nil {
		t.Fatal(err)
	}
	if _, err := tech.ParseVMMode("nonsense"); err == nil {
		t.Fatal("bad -vm value accepted")
	}
}

// TestObservabilityExportFlags drives the full -profile-out / -spans-out /
// -trace-out pipeline at micro scale: enable every collector the CLI
// flags would enable, run one direct-dispatch experiment (profiler
// samples) and one kernel-mediated experiment (span roots), and require
// each dump to be well-formed — folded stacks with integer weights,
// Chrome trace JSON with complete duration events, and a JSONL trace
// whose last line is the accounting footer.
func TestObservabilityExportFlags(t *testing.T) {
	dir := t.TempDir()
	telemetry.EnableTrace(1 << 12)
	if _, err := telemetry.EnableProfiler(256); err != nil {
		t.Fatal(err)
	}
	telemetry.EnableSpans(1 << 12)
	if err := telemetry.SetSpanSampleEvery(8); err != nil {
		t.Fatal(err)
	}
	telemetry.SetEnabled(true)
	t.Cleanup(func() {
		telemetry.SetEnabled(false)
		telemetry.DisableSpans()
		telemetry.DisableProfiler()
		telemetry.DisableTrace()
		_ = telemetry.SetSpanSampleEvery(64)
		telemetry.ResetMetrics()
	})

	cfg := microConfig()
	cfg.Telemetry = true
	// table2 exercises the metered engines (profiler hits); table6
	// routes writes through the Logical Disk (span roots).
	for _, exp := range []string{"table2", "table6"} {
		if _, err := run(cfg, exp, "", "", true); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}

	prof := filepath.Join(dir, "profile.folded")
	if err := dumpProfile(prof); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(prof)
	if err != nil {
		t.Fatal(err)
	}
	folded := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(folded) == 0 || folded[0] == "" {
		t.Fatal("folded profile is empty")
	}
	for _, line := range folded {
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.Count(fields[0], ";") != 2 {
			t.Fatalf("malformed folded line %q, want graft;tech;site weight", line)
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			t.Fatalf("folded weight in %q is not an integer: %v", line, err)
		}
	}

	spansPath := filepath.Join(dir, "spans.json")
	if err := dumpSpans(spansPath); err != nil {
		t.Fatal(err)
	}
	sdata, err := os.ReadFile(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(sdata, &chrome); err != nil {
		t.Fatalf("-spans-out is not valid Chrome trace JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("span export recorded no events from the LD run")
	}
	for _, e := range chrome.TraceEvents {
		if e.Ph != "X" || e.Name == "" {
			t.Fatalf("malformed trace event %+v", e)
		}
	}

	tracePath := filepath.Join(dir, "trace.jsonl")
	if err := dumpTrace(tracePath); err != nil {
		t.Fatal(err)
	}
	tdata, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	tlines := strings.Split(strings.TrimSpace(string(tdata)), "\n")
	var footer struct {
		Footer  bool   `json:"footer"`
		Emitted uint64 `json:"emitted"`
	}
	if err := json.Unmarshal([]byte(tlines[len(tlines)-1]), &footer); err != nil || !footer.Footer {
		t.Fatalf("trace JSONL does not end with the accounting footer: %q", tlines[len(tlines)-1])
	}
	if footer.Emitted == 0 {
		t.Error("trace footer reports zero emitted events after a traced run")
	}
}
