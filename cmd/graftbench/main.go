// Command graftbench regenerates the paper's evaluation artifacts —
// Tables 1-6, Figure 1, and the NIL-check / SFI-read-protection
// ablations — on this machine.
//
// Usage:
//
//	graftbench [-quick] [-experiment all|table1..table6|figure1|ablation|pktfilter|pktfilter-batch|scale]
//	           [-warmup N] [-seed N] [-report-dir dir]
//	           [-figure1-csv out.csv] [-vm opt|baseline] [-json] [-json-out out.json]
//	           [-telemetry] [-trace-out trace.jsonl]
//	           [-metrics-addr :9090] [-metrics-hold 30s]
//	           [-profile-out p.folded] [-profile-interval N]
//	           [-spans-out spans.json] [-span-sample N]
//	           [-check-against baseline.json] [-check-tolerance 0.30] [-check-effect 0.80]
//
// -experiment also accepts a comma-separated list (e.g.
// "table5,pktfilter-batch"); the named experiments run in the order
// given and share one report, so a single archived BENCH_*.json can
// gate several experiments at once.
//
// -vm selects the bytecode engine for the vm rows: "opt" (default, the
// load-time optimizing translator) or "baseline" (the reference
// interpreter). -json writes machine-readable results (ns durations,
// config, host info) to BENCH_<experiment>.json; -json-out overrides the
// path.
//
// -telemetry enables per-graft invocation metrics (counters, traps, fuel,
// sampled latency histograms; see docs/observability.md); the snapshots
// are printed after the run and attached to the JSON report. -trace-out
// additionally records kernel events (page faults, eviction decisions,
// stream-filter passes, upcalls, LD segment flushes) into a bounded ring
// and dumps them as JSONL to the given path (last line is an accounting
// footer with emitted/retained/dropped counts).
//
// -profile-out enables the fuel-attributed sampling profiler and writes
// a folded-stack (flamegraph-ready) profile; -profile-interval sets the
// fuel units between samples. -spans-out enables causal span tracing and
// writes Chrome trace-event JSON loadable at ui.perfetto.dev;
// -span-sample records one root span in N. All of these imply
// -telemetry; see docs/observability.md for the workflow.
//
// Every matrix cell runs -warmup discarded warmup runs (default 3 at
// paper scale, 1 with -quick) before its measured runs, and workload
// inputs derive from -seed (default 1996), so a repeated invocation
// measures identical work. -report-dir writes the suite artifacts —
// results.json, results.csv (the flattened cell matrix), and REPORT.md
// (methodology, per-cell stability flags, and the regression-gate
// verdicts when -check-against ran) — into the given directory.
//
// -check-against loads an archived BENCH_*.json and compares this run's
// results against it (see internal/bench.CompareReports). A cell fails
// the gate only when it moved in the bad direction by more than
// -check-tolerance AND the move is statistically significant relative to
// the two samples' variance (|Cohen's d| >= -check-effect); a bad-looking
// move inside a cell's own noise reads `noise` and does not fail. Rows
// the comparison had to skip (schema drift, disjoint experiments,
// service-time mismatch) are listed explicitly; the run errors if
// nothing at all could be gated. `make bench-check` wires this against
// the committed Table 5 baseline.
//
// Paper-scale runs (the default) take minutes, dominated by the script
// (Tcl-class) rows; -quick keeps every code path but shrinks sizes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"graftlab/internal/bench"
	"graftlab/internal/stats"
	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
	"graftlab/internal/upcall"
)

// defaultJSONPath names the -json output after the experiment, so runs
// of different experiments can be archived side by side. Comma-separated
// selections join with "+" to stay filesystem-friendly.
func defaultJSONPath(experiment string) string {
	return "BENCH_" + strings.ReplaceAll(experiment, ",", "+") + ".json"
}

func main() {
	upcall.SignalChildMain() // become the Table 1 child if so directed

	var (
		experiment = flag.String("experiment", "all",
			"which artifact(s) to regenerate: all, or a comma-separated list of table1..table6, figure1, ablation, pktfilter, pktfilter-batch, scale")
		quick  = flag.Bool("quick", false, "reduced sizes (CI-scale)")
		csv    = flag.String("figure1-csv", "", "also write the Figure 1 series to this CSV file")
		jsonB  = flag.Bool("json", false, "also write machine-readable results to BENCH_<experiment>.json")
		jsonP  = flag.String("json-out", "", "write machine-readable results to this path (implies -json)")
		vmMode = flag.String("vm", "", `bytecode engine: "opt" (default) or "baseline"`)
		telem  = flag.Bool("telemetry", false, "record per-graft invocation metrics and print/export them")
		trace  = flag.String("trace-out", "", "record kernel events and dump them as JSONL to this path (implies -telemetry)")
		checkP = flag.String("check-against", "", "compare results against this baseline BENCH_*.json; exit non-zero on regression")
		tolF   = flag.Float64("check-tolerance", 0.30, "relative tolerance for -check-against (0.30 = 30%)")
		effF   = flag.Float64("check-effect", stats.EffectLarge, "Cohen's d threshold for -check-against: smaller effects read as noise, not regression")

		warmup = flag.Int("warmup", 0, "discarded warmup runs per cell (0 = scale default: 3 paper, 1 quick)")
		seed   = flag.Int64("seed", 0, "workload seed for reproducible inputs (0 = default 1996)")
		repDir = flag.String("report-dir", "", "write results.json, results.csv, and REPORT.md into this directory")

		profOut      = flag.String("profile-out", "", "sample graft fuel and write a folded-stack (flamegraph) profile to this path (implies -telemetry)")
		profInterval = flag.Int64("profile-interval", telemetry.DefaultProfileInterval, "fuel units between profiler samples")
		spansOut     = flag.String("spans-out", "", "record causal spans and write Chrome trace-event JSON (Perfetto-loadable) to this path (implies -telemetry)")
		spanSample   = flag.Int("span-sample", 64, "sample every Nth root span for -spans-out")

		metricsAddr = flag.String("metrics-addr", "",
			"serve live /metrics (Prometheus text), /debug/telemetry.json, and SSE /stream on this address during the run (implies -telemetry)")
		metricsHold = flag.Duration("metrics-hold", 0,
			"keep the -metrics-addr server up this long after the run so scrapers and graftmon can read the final windows")
	)
	flag.Parse()

	cfg := bench.Default()
	if *quick {
		cfg = bench.Quick()
	}
	if *warmup > 0 {
		cfg.WarmupRuns = *warmup
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if exe, err := os.Executable(); err == nil {
		cfg.Exe = exe
	}
	mode, err := tech.ParseVMMode(*vmMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graftbench: %v\n", err)
		os.Exit(2)
	}
	cfg.VM = mode

	exp := strings.ToLower(*experiment)
	jsonPath := *jsonP
	if jsonPath == "" && *jsonB {
		jsonPath = defaultJSONPath(exp)
	}
	if *trace != "" {
		*telem = true
		telemetry.EnableTrace(traceRingCapacity)
	}
	if *profOut != "" {
		*telem = true
		if _, err := telemetry.EnableProfiler(*profInterval); err != nil {
			fmt.Fprintf(os.Stderr, "graftbench: %v\n", err)
			os.Exit(2)
		}
	}
	if *spansOut != "" {
		*telem = true
		if err := telemetry.SetSpanSampleEvery(*spanSample); err != nil {
			fmt.Fprintf(os.Stderr, "graftbench: %v\n", err)
			os.Exit(2)
		}
		telemetry.EnableSpans(spanRingCapacity)
	}
	if *metricsAddr != "" {
		*telem = true
	}
	if *telem {
		telemetry.SetEnabled(true)
		cfg.Telemetry = true
	}
	if *metricsAddr != "" {
		srv, err := telemetry.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graftbench: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("serving live telemetry on http://%s (endpoints: /metrics, /debug/telemetry.json, /stream)\n", srv.Addr())
		defer srv.Close()
		if *metricsHold > 0 {
			defer func() {
				fmt.Printf("holding telemetry server for %v (attach graftmon or curl, ^C to stop early)\n", *metricsHold)
				time.Sleep(*metricsHold)
			}()
		}
	}

	report, err := run(cfg, exp, *csv, jsonPath, *quick)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graftbench: %v\n", err)
		os.Exit(1)
	}
	var cmp *bench.Comparison
	var checkErr error
	if *checkP != "" {
		cmp, checkErr = checkAgainst(report, *checkP, *tolF, *effF)
	}
	if *repDir != "" {
		opts := bench.ReportOptions{
			BaselinePath:    *checkP,
			Tolerance:       *tolF,
			EffectThreshold: *effF,
		}
		if err := writeReportArtifacts(*repDir, report, cmp, opts); err != nil {
			fmt.Fprintf(os.Stderr, "graftbench: %v\n", err)
			os.Exit(1)
		}
	}
	if checkErr != nil {
		// Artifacts above are written first so a failing gate still leaves
		// REPORT.md documenting what regressed.
		fmt.Fprintf(os.Stderr, "graftbench: %v\n", checkErr)
		os.Exit(1)
	}
	if *trace != "" {
		if err := dumpTrace(*trace); err != nil {
			fmt.Fprintf(os.Stderr, "graftbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *profOut != "" {
		if err := dumpProfile(*profOut); err != nil {
			fmt.Fprintf(os.Stderr, "graftbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *spansOut != "" {
		if err := dumpSpans(*spansOut); err != nil {
			fmt.Fprintf(os.Stderr, "graftbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// traceRingCapacity bounds the kernel event ring; at ~48 bytes per event
// this is a few MB, plenty for a full paper-scale run's kernel activity.
const traceRingCapacity = 1 << 16

// spanRingCapacity bounds the causal span ring. Spans are sampled (one
// root in -span-sample), so this holds minutes of paper-scale activity.
const spanRingCapacity = 1 << 15

// dumpProfile writes the folded-stack fuel profile and prints the
// per-line attribution table.
func dumpProfile(path string) error {
	p := telemetry.CurrentProfile()
	if p == nil {
		return fmt.Errorf("no profile recorded")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteFolded(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("folded fuel profile written to %s (%d sites, %d fuel attributed)\n",
		path, len(p.Samples()), p.TotalFuel())
	if table := p.LineTable(); table != "" {
		fmt.Print(table)
	}
	return nil
}

// dumpSpans writes the recorded causal spans as Chrome trace-event JSON
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func dumpSpans(path string) error {
	st := telemetry.CurrentSpans()
	if st == nil {
		return fmt.Errorf("no spans recorded")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := st.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("causal span trace written to %s (%d spans retained, %d dropped)\n",
		path, st.Len(), st.Dropped())
	return nil
}

// checkAgainst compares report with the baseline archived at path. It
// prints every gated cell (ratio, both CVs, Cohen's d, verdict) and the
// skip summary, and returns the comparison plus an error when any cell's
// regression is both practically (tolerance) and statistically (effect
// size) significant, or when nothing at all could be gated.
func checkAgainst(report *bench.Report, path string, tol, effect float64) (*bench.Comparison, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var baseline bench.Report
	if err := json.Unmarshal(data, &baseline); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	cmp := bench.CompareReports(&baseline, report, bench.CompareOptions{
		Tolerance: tol, EffectThreshold: effect,
	})
	fmt.Printf("regression gate vs %s (tolerance %.0f%%, effect threshold |d| >= %.2f):\n",
		path, tol*100, effect)
	for _, c := range cmp.Cells {
		fmt.Println("  " + c.String())
	}
	if sum := cmp.SkipSummary(); sum != "" {
		fmt.Println(sum)
	}
	if cmp.Compared() == 0 {
		msg := fmt.Sprintf("baseline %s shares no gated metrics with this run", path)
		if sum := cmp.SkipSummary(); sum != "" {
			msg += "\n" + sum
		}
		return cmp, fmt.Errorf("%s", msg)
	}
	if regs := cmp.Regressions(); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
		}
		return cmp, fmt.Errorf("%d of %d gated metrics regressed (> %.0f%% worse with |d| >= %.2f) vs %s",
			len(regs), cmp.Compared(), tol*100, effect, path)
	}
	fmt.Printf("regression check: %d gated metrics clean vs %s\n", cmp.Compared(), path)
	return cmp, nil
}

// writeReportArtifacts writes the suite outputs — results.json,
// results.csv (the flattened cell matrix), and the generated REPORT.md —
// into dir, creating it if needed. cmp may be nil (no -check-against).
func writeReportArtifacts(dir string, report *bench.Report, cmp *bench.Comparison, opts bench.ReportOptions) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := report.Encode()
	if err != nil {
		return err
	}
	cells := bench.Flatten(report, opts.CVThreshold)
	for name, content := range map[string][]byte{
		"results.json": data,
		"results.csv":  []byte(bench.CSV(cells)),
		"REPORT.md":    []byte(bench.GenerateReportMD(report, cmp, opts)),
	} {
		if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("suite artifacts (results.json, results.csv, REPORT.md) written to %s\n", dir)
	return nil
}

// dumpTrace writes the retained kernel events as JSONL.
func dumpTrace(path string) error {
	tr := telemetry.CurrentTrace()
	if tr == nil {
		return fmt.Errorf("no trace recorded")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("kernel event trace written to %s (%d events retained, %d overwritten)\n",
		path, tr.Len(), tr.Overwritten())
	return nil
}

func run(cfg bench.Config, experiment, csvPath, jsonPath string, quick bool) (*bench.Report, error) {
	report := &bench.Report{GeneratedNote: "paper-scale", Host: bench.CollectHost(), Config: &cfg}
	if quick {
		report.GeneratedNote = "quick-scale"
	}
	specs := bench.Experiments()
	requested := map[string]bool{}
	if experiment != "all" {
		specs = nil
		for _, name := range strings.Split(experiment, ",") {
			name = strings.TrimSpace(name)
			if name == "" || requested[name] {
				continue
			}
			spec, err := bench.FindExperiment(name)
			if err != nil {
				return nil, err
			}
			requested[spec.Name] = true
			specs = append(specs, spec)
		}
		if len(specs) == 0 {
			return nil, fmt.Errorf("-experiment %q selects nothing", experiment)
		}
	}
	for _, spec := range specs {
		if spec.Concurrent && !requested[spec.Name] {
			// Concurrent experiments (scale) run only on request: their
			// goroutines would interleave with the single-threaded tables'
			// timing loops.
			continue
		}
		if err := spec.Run(cfg, report); err != nil {
			return nil, err
		}
		if out := spec.Render(report); out != "" {
			fmt.Println(out)
		}
	}
	if csvPath != "" && report.Figure1 != nil {
		if err := os.WriteFile(csvPath, []byte(report.Figure1.CSV()), 0o644); err != nil {
			return nil, err
		}
		fmt.Printf("figure 1 series written to %s\n\n", csvPath)
	}
	if snaps := telemetry.SnapshotAll(); len(snaps) > 0 {
		report.Telemetry = snaps
		fmt.Println("Per-graft telemetry:")
		for _, s := range snaps {
			fmt.Println("  " + s.String())
		}
		fmt.Println()
	}
	if jsonPath != "" {
		data, err := report.Encode()
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return nil, err
		}
		fmt.Printf("machine-readable results written to %s (%s)\n", jsonPath, bench.DurationsNote)
	}
	return report, nil
}
