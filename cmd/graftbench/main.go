// Command graftbench regenerates the paper's evaluation artifacts —
// Tables 1-6, Figure 1, and the NIL-check / SFI-read-protection
// ablations — on this machine.
//
// Usage:
//
//	graftbench [-quick] [-experiment all|table1|table2|table3|table4|table5|table6|figure1|ablation|pktfilter|scale]
//	           [-figure1-csv out.csv] [-vm opt|baseline] [-json] [-json-out out.json]
//	           [-telemetry] [-trace-out trace.jsonl]
//	           [-profile-out p.folded] [-profile-interval N]
//	           [-spans-out spans.json] [-span-sample N]
//	           [-check-against baseline.json] [-check-tolerance 0.30]
//
// -vm selects the bytecode engine for the vm rows: "opt" (default, the
// load-time optimizing translator) or "baseline" (the reference
// interpreter). -json writes machine-readable results (ns durations,
// config, host info) to BENCH_<experiment>.json; -json-out overrides the
// path.
//
// -telemetry enables per-graft invocation metrics (counters, traps, fuel,
// sampled latency histograms; see docs/observability.md); the snapshots
// are printed after the run and attached to the JSON report. -trace-out
// additionally records kernel events (page faults, eviction decisions,
// stream-filter passes, upcalls, LD segment flushes) into a bounded ring
// and dumps them as JSONL to the given path (last line is an accounting
// footer with emitted/retained/dropped counts).
//
// -profile-out enables the fuel-attributed sampling profiler and writes
// a folded-stack (flamegraph-ready) profile; -profile-interval sets the
// fuel units between samples. -spans-out enables causal span tracing and
// writes Chrome trace-event JSON loadable at ui.perfetto.dev;
// -span-sample records one root span in N. All of these imply
// -telemetry; see docs/observability.md for the workflow.
//
// -check-against loads an archived BENCH_*.json and compares this run's
// results against it (see internal/bench.CompareReports): a time-like
// metric more than the tolerance slower, or a throughput more than the
// tolerance lower, fails the run with exit status 1. `make bench-check`
// wires this against the committed Table 5 baseline.
//
// Paper-scale runs (the default) take minutes, dominated by the script
// (Tcl-class) rows; -quick keeps every code path but shrinks sizes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"graftlab/internal/bench"
	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
	"graftlab/internal/upcall"
)

// defaultJSONPath names the -json output after the experiment, so runs
// of different experiments can be archived side by side.
func defaultJSONPath(experiment string) string {
	return "BENCH_" + experiment + ".json"
}

func main() {
	upcall.SignalChildMain() // become the Table 1 child if so directed

	var (
		experiment = flag.String("experiment", "all",
			"which artifact to regenerate: all, table1..table6, figure1, ablation, pktfilter, scale")
		quick  = flag.Bool("quick", false, "reduced sizes (CI-scale)")
		csv    = flag.String("figure1-csv", "", "also write the Figure 1 series to this CSV file")
		jsonB  = flag.Bool("json", false, "also write machine-readable results to BENCH_<experiment>.json")
		jsonP  = flag.String("json-out", "", "write machine-readable results to this path (implies -json)")
		vmMode = flag.String("vm", "", `bytecode engine: "opt" (default) or "baseline"`)
		telem  = flag.Bool("telemetry", false, "record per-graft invocation metrics and print/export them")
		trace  = flag.String("trace-out", "", "record kernel events and dump them as JSONL to this path (implies -telemetry)")
		checkP = flag.String("check-against", "", "compare results against this baseline BENCH_*.json; exit non-zero on regression")
		tolF   = flag.Float64("check-tolerance", 0.30, "relative tolerance for -check-against (0.30 = 30%)")

		profOut      = flag.String("profile-out", "", "sample graft fuel and write a folded-stack (flamegraph) profile to this path (implies -telemetry)")
		profInterval = flag.Int64("profile-interval", telemetry.DefaultProfileInterval, "fuel units between profiler samples")
		spansOut     = flag.String("spans-out", "", "record causal spans and write Chrome trace-event JSON (Perfetto-loadable) to this path (implies -telemetry)")
		spanSample   = flag.Int("span-sample", 64, "sample every Nth root span for -spans-out")
	)
	flag.Parse()

	cfg := bench.Default()
	if *quick {
		cfg = bench.Quick()
	}
	if exe, err := os.Executable(); err == nil {
		cfg.Exe = exe
	}
	mode, err := tech.ParseVMMode(*vmMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graftbench: %v\n", err)
		os.Exit(2)
	}
	cfg.VM = mode

	exp := strings.ToLower(*experiment)
	jsonPath := *jsonP
	if jsonPath == "" && *jsonB {
		jsonPath = defaultJSONPath(exp)
	}
	if *trace != "" {
		*telem = true
		telemetry.EnableTrace(traceRingCapacity)
	}
	if *profOut != "" {
		*telem = true
		if _, err := telemetry.EnableProfiler(*profInterval); err != nil {
			fmt.Fprintf(os.Stderr, "graftbench: %v\n", err)
			os.Exit(2)
		}
	}
	if *spansOut != "" {
		*telem = true
		if err := telemetry.SetSpanSampleEvery(*spanSample); err != nil {
			fmt.Fprintf(os.Stderr, "graftbench: %v\n", err)
			os.Exit(2)
		}
		telemetry.EnableSpans(spanRingCapacity)
	}
	if *telem {
		telemetry.SetEnabled(true)
		cfg.Telemetry = true
	}

	report, err := run(cfg, exp, *csv, jsonPath, *quick)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graftbench: %v\n", err)
		os.Exit(1)
	}
	if *checkP != "" {
		if err := checkAgainst(report, *checkP, *tolF); err != nil {
			fmt.Fprintf(os.Stderr, "graftbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *trace != "" {
		if err := dumpTrace(*trace); err != nil {
			fmt.Fprintf(os.Stderr, "graftbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *profOut != "" {
		if err := dumpProfile(*profOut); err != nil {
			fmt.Fprintf(os.Stderr, "graftbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *spansOut != "" {
		if err := dumpSpans(*spansOut); err != nil {
			fmt.Fprintf(os.Stderr, "graftbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// traceRingCapacity bounds the kernel event ring; at ~48 bytes per event
// this is a few MB, plenty for a full paper-scale run's kernel activity.
const traceRingCapacity = 1 << 16

// spanRingCapacity bounds the causal span ring. Spans are sampled (one
// root in -span-sample), so this holds minutes of paper-scale activity.
const spanRingCapacity = 1 << 15

// dumpProfile writes the folded-stack fuel profile and prints the
// per-line attribution table.
func dumpProfile(path string) error {
	p := telemetry.CurrentProfile()
	if p == nil {
		return fmt.Errorf("no profile recorded")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteFolded(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("folded fuel profile written to %s (%d sites, %d fuel attributed)\n",
		path, len(p.Samples()), p.TotalFuel())
	if table := p.LineTable(); table != "" {
		fmt.Print(table)
	}
	return nil
}

// dumpSpans writes the recorded causal spans as Chrome trace-event JSON
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func dumpSpans(path string) error {
	st := telemetry.CurrentSpans()
	if st == nil {
		return fmt.Errorf("no spans recorded")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := st.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("causal span trace written to %s (%d spans retained, %d dropped)\n",
		path, st.Len(), st.Dropped())
	return nil
}

// checkAgainst compares report with the baseline archived at path and
// returns an error listing every metric that regressed beyond tol.
func checkAgainst(report *bench.Report, path string, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var baseline bench.Report
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	regs, compared := bench.CompareReports(&baseline, report, tol)
	if compared == 0 {
		return fmt.Errorf("baseline %s shares no comparable metrics with this run", path)
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
		}
		return fmt.Errorf("%d of %d metrics regressed beyond %.0f%% vs %s",
			len(regs), compared, tol*100, path)
	}
	fmt.Printf("regression check: %d metrics within %.0f%% of %s\n", compared, tol*100, path)
	return nil
}

// dumpTrace writes the retained kernel events as JSONL.
func dumpTrace(path string) error {
	tr := telemetry.CurrentTrace()
	if tr == nil {
		return fmt.Errorf("no trace recorded")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("kernel event trace written to %s (%d events retained, %d overwritten)\n",
		path, tr.Len(), tr.Overwritten())
	return nil
}

func run(cfg bench.Config, experiment, csvPath, jsonPath string, quick bool) (*bench.Report, error) {
	want := func(name string) bool { return experiment == "all" || experiment == name }
	report := &bench.Report{GeneratedNote: "paper-scale", Host: bench.CollectHost(), Config: &cfg}
	if quick {
		report.GeneratedNote = "quick-scale"
	}
	known := map[string]bool{
		"all": true, "table1": true, "table2": true, "table3": true,
		"table4": true, "table5": true, "table6": true, "figure1": true,
		"ablation": true, "pktfilter": true, "scale": true,
	}
	if !known[experiment] {
		return nil, fmt.Errorf("unknown experiment %q", experiment)
	}

	if want("table1") {
		res, err := bench.RunSignal(cfg)
		if err != nil {
			return nil, err
		}
		report.Signal = res
		fmt.Println(res.Table())
	}
	var evict *bench.EvictResult
	if want("table2") || want("figure1") {
		var err error
		evict, err = bench.RunEviction(cfg)
		if err != nil {
			return nil, err
		}
	}
	if want("table2") {
		report.Evict = evict
		fmt.Println(evict.Table())
	}
	if want("table3") {
		res, err := bench.RunFault(cfg)
		if err != nil {
			return nil, err
		}
		report.Fault = res
		fmt.Println(res.Table())
	}
	if want("table4") {
		res, err := bench.RunDisk(cfg)
		if err != nil {
			return nil, err
		}
		report.Disk = res
		fmt.Println(res.Table())
	}
	if want("table5") {
		res, err := bench.RunMD5(cfg)
		if err != nil {
			return nil, err
		}
		report.MD5 = res
		fmt.Println(res.Table())
	}
	if want("table6") {
		res, err := bench.RunLD(cfg)
		if err != nil {
			return nil, err
		}
		report.LD = res
		fmt.Println(res.Table())
	}
	if want("figure1") {
		fig, err := bench.RunFigure1(cfg, evict)
		if err != nil {
			return nil, err
		}
		report.Figure1 = fig
		fmt.Println(fig.Table())
		if csvPath != "" {
			if err := os.WriteFile(csvPath, []byte(fig.CSV()), 0o644); err != nil {
				return nil, err
			}
			fmt.Printf("figure 1 series written to %s\n\n", csvPath)
		}
	}
	if want("pktfilter") {
		res, err := bench.RunPacketFilter(cfg)
		if err != nil {
			return nil, err
		}
		report.PacketFilter = res
		fmt.Println(res.Table())
	}
	if want("ablation") {
		res, err := bench.RunAblation(cfg)
		if err != nil {
			return nil, err
		}
		report.Ablation = res
		fmt.Println(res.Table())
	}
	if experiment == "scale" {
		// E7 runs only on request: it is the one experiment whose model is
		// concurrent, so folding it into "all" would interleave goroutines
		// with the single-threaded tables' timing loops.
		res, err := bench.RunScale(cfg)
		if err != nil {
			return nil, err
		}
		report.Scale = res
		fmt.Println(res.Table())
	}
	if snaps := telemetry.SnapshotAll(); len(snaps) > 0 {
		report.Telemetry = snaps
		fmt.Println("Per-graft telemetry:")
		for _, s := range snaps {
			fmt.Println("  " + s.String())
		}
		fmt.Println()
	}
	if jsonPath != "" {
		data, err := report.Encode()
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return nil, err
		}
		fmt.Printf("machine-readable results written to %s (%s)\n", jsonPath, bench.DurationsNote)
	}
	return report, nil
}
