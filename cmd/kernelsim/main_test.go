package main

import (
	"testing"

	"graftlab/internal/tech"
)

func TestScenarios(t *testing.T) {
	if err := run(tech.NativeUnsafe, 64, 1, 2); err != nil {
		t.Fatalf("pageevict: %v", err)
	}
	if err := runSched(tech.Bytecode); err != nil {
		t.Fatalf("sched: %v", err)
	}
	if err := runCache(tech.CompiledUnsafe); err != nil {
		t.Fatalf("cache: %v", err)
	}
	if err := runReadahead(); err != nil {
		t.Fatalf("readahead: %v", err)
	}
	if err := runSwap(tech.Bytecode); err != nil {
		t.Fatalf("swap: %v", err)
	}
	if err := runCanary(tech.Bytecode); err != nil {
		t.Fatalf("canary: %v", err)
	}
	if err := runWatchdog(tech.Bytecode); err != nil {
		t.Fatalf("watchdog: %v", err)
	}
}
