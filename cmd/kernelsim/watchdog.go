package main

import (
	"errors"
	"fmt"
	"time"

	"graftlab/internal/mem"
	"graftlab/internal/stats"
	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
)

// runWatchdog walks the windowed burn-rate loop end to end on a single
// long-lived graft: a large healthy history, a fresh regression that the
// lifetime aggregate dilutes below the SLO but the sliding windows catch
// within one fast window, automatic quarantine (the kernel refuses the
// hook), and — once the fast window drains clean through probation —
// automatic unquarantine and restored service.
func runWatchdog(id tech.ID) error {
	// The watchdog reads the telemetry layer, so the scenario needs it on
	// regardless of the -telemetry flag.
	wasEnabled := telemetry.Enabled()
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(wasEnabled)

	// Shrink the bucket geometry so window rotation happens in tens of
	// milliseconds instead of minutes. Must precede Load: rings are sized
	// when the graft registers.
	if err := telemetry.SetWindowConfig(telemetry.WindowConfig{
		Width:   50 * time.Millisecond,
		Buckets: 64,
	}); err != nil {
		return err
	}
	defer telemetry.SetWindowConfig(telemetry.DefaultWindowConfig) //nolint:errcheck

	const (
		fastWindow = 200 * time.Millisecond
		slowWindow = time.Second
		fuelBudget = 1 << 12
	)
	src := tech.Source{
		Name: "hotpath",
		GEL: `
func hot(x) {
	var i = 0;
	while (i < x) { i = i + 1; }
	return i;
}
`,
	}
	g, err := tech.Load(id, src, mem.New(1<<12), tech.Options{Fuel: fuelBudget})
	if err != nil {
		return err
	}
	met := telemetry.Register(src.Name, string(id))

	w := telemetry.NewWatchdog(telemetry.SLO{
		MaxPreemptRate: 0.25,
		MinInvocations: 256,
		FastWindow:     fastWindow,
		SlowWindow:     slowWindow,
		RecoveryChecks: 2,
		Quarantine:     true,
	})
	fmt.Printf("graft %q on %s, fuel budget %d\n", src.Name, id, fuelBudget)
	fmt.Printf("SLO: preempt rate <= 0.25 over both the %v fast and %v slow window; quarantine on\n\n",
		fastWindow, slowWindow)

	// Phase 1: a long healthy life. hot(1) is one loop iteration — far
	// inside the fuel budget.
	const healthy = 16384
	for i := 0; i < healthy; i++ {
		if _, err := g.Invoke("hot", 1); err != nil {
			return fmt.Errorf("healthy invocation %d: %v", i, err)
		}
	}
	fmt.Printf("phase 1: %d healthy invocations, 0 preemptions — lifetime history banked\n", healthy)

	// Let the healthy traffic age past the slow window, then regress:
	// hot(8000) wants more iterations than the fuel budget allows, so
	// every invocation is preempted.
	time.Sleep(slowWindow + 50*time.Millisecond)
	const regressed = 1024
	var preempted int
	for i := 0; i < regressed; i++ {
		_, err := g.Invoke("hot", 8000)
		var tr *mem.Trap
		if errors.As(err, &tr) && tr.Kind == mem.TrapFuel {
			preempted++
		} else if err != nil {
			return fmt.Errorf("regressed invocation %d: %v", i, err)
		}
	}
	fmt.Printf("phase 2: regression — %d of %d invocations fuel-preempted\n\n", preempted, regressed)

	// The view the watchdog is about to act on.
	life := met.Snapshot()
	lifeRate := float64(met.FuelPreemptions()) / float64(life.Invocations)
	slow := met.Window(slowWindow)
	fast := met.Window(fastWindow)
	verdict := func(rate float64) string {
		if rate > 0.25 {
			return "BREACH"
		}
		return "ok"
	}
	t := &stats.Table{
		Title:  "Same graft, three vantage points at detection time",
		Header: []string{"scope", "invocations", "preempts", "preempt rate", "vs SLO"},
		Caption: "The lifetime aggregate dilutes the regression below the SLO — a\n" +
			"lifetime-only watchdog would wave it through. Both sliding windows see\n" +
			"the current behaviour and breach together, which is the burn-rate\n" +
			"condition for flagging.",
	}
	t.AddRow("lifetime", fmt.Sprint(life.Invocations),
		fmt.Sprint(met.FuelPreemptions()), fmt.Sprintf("%.3f", lifeRate), verdict(lifeRate))
	t.AddRow(fmt.Sprintf("slow window (%v)", slowWindow), fmt.Sprint(slow.Invocations),
		fmt.Sprint(slow.Preempts), fmt.Sprintf("%.3f", slow.PreemptRate), verdict(slow.PreemptRate))
	t.AddRow(fmt.Sprintf("fast window (%v)", fastWindow), fmt.Sprint(fast.Invocations),
		fmt.Sprint(fast.Preempts), fmt.Sprintf("%.3f", fast.PreemptRate), verdict(fast.PreemptRate))
	fmt.Println(t)

	fresh := w.Check()
	if len(fresh) != 1 {
		return fmt.Errorf("watchdog flagged %d pairs, want the regressed graft", len(fresh))
	}
	v := fresh[0]
	fmt.Printf("watchdog: flagged %q (%s) over the %v window: %s\n", v.Graft, v.Tech, v.Window, v.Reason)
	if !met.Quarantined() {
		return fmt.Errorf("violation did not quarantine the graft")
	}

	// Quarantine is enforced on the invoke path itself; the wrapper
	// notices at its next sampling point (every 256th call).
	refusedAt := -1
	for i := 1; i <= 512; i++ {
		if _, err := g.Invoke("hot", 1); errors.Is(err, telemetry.ErrQuarantined) {
			refusedAt = i
			break
		}
	}
	if refusedAt < 0 {
		return fmt.Errorf("quarantined graft was never refused")
	}
	fmt.Printf("quarantine: hook refused at attempt %d (cached verdict refreshes each sampling batch)\n\n", refusedAt)

	// Phase 3: with the hook refused, no traffic reaches the graft and
	// its fast window drains. Two consecutive clean scans complete the
	// probation and lift the quarantine automatically.
	time.Sleep(fastWindow + 50*time.Millisecond)
	w.Check()
	if !met.Quarantined() {
		return fmt.Errorf("quarantine lifted after one clean scan, want two")
	}
	fmt.Println("probation: clean scan 1/2 — still quarantined")
	w.Check()
	if met.Quarantined() {
		return fmt.Errorf("quarantine not lifted after probation")
	}
	recs := w.Recoveries()
	if len(recs) != 1 {
		return fmt.Errorf("recoveries = %d, want 1", len(recs))
	}
	fmt.Printf("probation: clean scan 2/2 — unquarantined %q after %d checks\n",
		recs[0].Graft, recs[0].Checks)
	if _, err := g.Invoke("hot", 1); err != nil {
		return fmt.Errorf("post-recovery invocation: %v", err)
	}
	fmt.Println("recovery: hook serving again; no operator in the loop at any point")
	return nil
}
