// Command kernelsim drives the simulated extensible kernel through the
// paper's TPC-B page-eviction scenario and prints the outcome with and
// without the Prioritization graft installed — the qualitative story
// behind Table 2's break-even arithmetic.
//
// Usage:
//
//	kernelsim [-tech native-unsafe] [-frames 200] [-subtrees 2] [-passes 5]
//	          [-telemetry] [-metrics-addr :9090]
//
// -telemetry turns on the observability layer for the run: per-graft
// invocation counters (printed as a table afterwards) and the kernel
// event trace (summarized by event kind). -metrics-addr additionally
// serves the live export surface (/metrics, /debug/telemetry.json, SSE
// /stream) for the duration of the run, so graftmon or a Prometheus
// scraper can watch the scenarios execute. See docs/observability.md.
//
// The interesting regime is a working set slightly larger than memory,
// rescanned: pure LRU then evicts exactly the pages about to be needed
// (the sequential-scan pathology §3.1 describes), while the hot-list
// graft redirects evictions to pages the application is done with.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"graftlab/internal/btree"
	"graftlab/internal/grafts"
	"graftlab/internal/kernel"
	"graftlab/internal/mem"
	"graftlab/internal/stats"
	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
	"graftlab/internal/vclock"
)

func main() {
	var (
		techName = flag.String("tech", string(tech.NativeUnsafe), "technology carrying the graft")
		frames   = flag.Int("frames", 200, "physical frames")
		subtrees = flag.Int("subtrees", 2, "third-level subtrees to scan")
		passes   = flag.Int("passes", 5, "scan passes over the subtree range")
		scenario = flag.String("scenario", "pageevict",
			"which hook point to drive: pageevict, sched, cache, readahead, swap, canary, watchdog, all")
		telem = flag.Bool("telemetry", false,
			"record per-graft counters and kernel events; print them after the run")
		metricsAddr = flag.String("metrics-addr", "",
			"serve live /metrics (Prometheus text), /debug/telemetry.json, and SSE /stream on this address during the run (implies -telemetry)")
	)
	flag.Parse()
	if *metricsAddr != "" {
		*telem = true
	}
	if *telem {
		telemetry.SetEnabled(true)
		telemetry.EnableTrace(1 << 14)
	}
	if *metricsAddr != "" {
		srv, err := telemetry.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kernelsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serving live telemetry on http://%s (endpoints: /metrics, /debug/telemetry.json, /stream)\n", srv.Addr())
		defer srv.Close()
	}
	id := tech.ID(*techName)
	var err error
	switch *scenario {
	case "pageevict":
		err = run(id, *frames, *subtrees, *passes)
	case "sched":
		err = runSched(id)
	case "cache":
		err = runCache(id)
	case "readahead":
		err = runReadahead()
	case "swap":
		err = runSwap(id)
	case "canary":
		err = runCanary(id)
	case "watchdog":
		err = runWatchdog(id)
	case "all":
		for _, f := range []func() error{
			func() error { return run(id, *frames, *subtrees, *passes) },
			func() error { return runSched(id) },
			func() error { return runCache(id) },
			runReadahead,
			func() error { return runSwap(id) },
			func() error { return runCanary(id) },
			func() error { return runWatchdog(id) },
		} {
			if err = f(); err != nil {
				break
			}
		}
	default:
		err = fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "kernelsim: %v\n", err)
		os.Exit(1)
	}
	if *telem {
		printTelemetry()
	}
}

// printTelemetry renders the live counters view: one row per (graft,
// technology) pair, then the cumulative kernel event counts by kind.
func printTelemetry() {
	snaps := telemetry.SnapshotAll()
	t := &stats.Table{
		Title:  "Per-graft telemetry",
		Header: []string{"graft", "tech", "invocations", "traps", "fuel", "p50", "p99", "max"},
		Caption: "Sampled latency quantiles (every 256th invocation, log2 buckets); see\n" +
			"docs/observability.md for the counter and histogram semantics.",
	}
	for _, s := range snaps {
		var traps uint64
		for _, n := range s.Traps {
			traps += n
		}
		t.AddRow(s.Graft, s.Tech,
			fmt.Sprint(s.Invocations), fmt.Sprint(traps), fmt.Sprint(s.FuelConsumed),
			stats.FormatDuration(s.LatencyP50), stats.FormatDuration(s.LatencyP99),
			stats.FormatDuration(s.LatencyMax))
	}
	fmt.Println(t)
	if tr := telemetry.CurrentTrace(); tr != nil {
		fmt.Printf("kernel events (%d retained, %d dropped by ring overwrite):\n", tr.Len(), tr.Overwritten())
		counts := tr.CountByKind()
		kinds := make([]string, 0, len(counts))
		for kind := range counts {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds)
		for _, kind := range kinds {
			fmt.Printf("  %-16s %d\n", kind, counts[kind])
		}
	}
}

func run(id tech.ID, frames, subtrees, passes int) error {
	tree := btree.MustBuild(btree.TPCBConfig())
	if subtrees > len(tree.L3) {
		subtrees = len(tree.L3)
	}

	scan := func(useGraft bool) (kernel.PagerStats, *vclock.Clock, error) {
		m := mem.New(grafts.PEMemSize)
		clock := &vclock.Clock{}
		pager, err := kernel.NewPager(kernel.PagerConfig{
			Frames:    frames,
			FaultTime: 14 * 1000 * 1000, // 14ms disk-backed fault
			Mem:       m,
			NodeBase:  grafts.PELRUNodeBase,
		}, clock)
		if err != nil {
			return kernel.PagerStats{}, nil, err
		}
		hot := grafts.NewHotList(m)
		if useGraft {
			g, err := tech.Load(id, grafts.PageEvict, m, tech.Options{})
			if err != nil {
				return kernel.PagerStats{}, nil, err
			}
			pager.SetPolicy(grafts.NewGraftEvictionPolicy(g))
		}
		for pass := 0; pass < passes; pass++ {
			err = tree.Scan(0, subtrees, func(a btree.Access) error {
				if a.HotList != nil {
					hot.Set(a.HotList)
				}
				if _, err := pager.Access(a.Page); err != nil {
					return err
				}
				hot.Remove(a.Page)
				return nil
			})
			if err != nil {
				return kernel.PagerStats{}, nil, err
			}
		}
		return pager.Stats(), clock, err
	}

	fmt.Printf("TPC-B b-tree: %d internal pages, %d data pages; %d passes over %d subtrees on %d frames\n\n",
		tree.NumInternalPages(), tree.NumDataPages(), passes, subtrees, frames)

	base, baseClock, err := scan(false)
	if err != nil {
		return err
	}
	withGraft, graftClock, err := scan(true)
	if err != nil {
		return err
	}

	t := &stats.Table{
		Title:  fmt.Sprintf("Page eviction with and without the graft (%s)", id),
		Header: []string{"configuration", "faults", "hits", "overrides", "virtual time"},
	}
	t.AddRow("default LRU",
		fmt.Sprint(base.Faults), fmt.Sprint(base.Hits), "-",
		stats.FormatDuration(baseClock.Now()))
	t.AddRow("eviction graft",
		fmt.Sprint(withGraft.Faults), fmt.Sprint(withGraft.Hits),
		fmt.Sprint(withGraft.PolicyOverrides),
		stats.FormatDuration(graftClock.Now()))
	fmt.Println(t)

	saved := int64(base.Faults) - int64(withGraft.Faults)
	fmt.Printf("faults saved by the graft: %d (%.2f%%)\n",
		saved, 100*float64(saved)/float64(base.Faults))
	return nil
}
