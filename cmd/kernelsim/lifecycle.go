package main

import (
	"errors"
	"fmt"

	"graftlab/internal/grafts"
	"graftlab/internal/lifecycle"
	"graftlab/internal/mem"
	"graftlab/internal/stats"
	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
)

// The lifecycle scenarios demonstrate live graft deployment: `swap`
// hot-swaps a packet-filter policy mid-stream through a versioned slot
// and shows the frame-by-frame cutover; `canary` stages a runaway
// upgrade behind canary routing and shows the armed watchdog demote it
// automatically. Both print the slot's conservation ledger at the end —
// every issued invocation committed against exactly one version.

// filterSlot builds a slot carrying the packet filter under id, v1
// configured for port `p1` and (staged) v2 for `p2`.
func filterSlot(id tech.ID, p1, p2 uint16, canaryEvery uint64) (*lifecycle.Slot, error) {
	s := lifecycle.NewSlot("pktfilter", id,
		lifecycle.Loader(id, grafts.PFMemSize, tech.Options{}))
	conf := func(port uint16) func(m *mem.Memory) error {
		return func(m *mem.Memory) error {
			grafts.ConfigurePacketFilter(m, port)
			return nil
		}
	}
	if err := s.Activate(tech.NewArtifact(grafts.PacketFilter, 1), conf(p1)); err != nil {
		return nil, err
	}
	if err := s.Stage(tech.NewArtifact(grafts.PacketFilter, 2), conf(p2), canaryEvery); err != nil {
		return nil, err
	}
	return s, nil
}

// frameFor writes one 60-byte UDP frame for port into the acquired
// engine's filter buffer.
func frameFor(port uint16) func(m *mem.Memory) error {
	return func(m *mem.Memory) error {
		for i := uint32(0); i < 60; i++ {
			m.St8U(grafts.PFBufAddr+i, 0)
		}
		m.St8U(grafts.PFBufAddr+12, 0x08)
		m.St8U(grafts.PFBufAddr+13, 0x00)
		m.St8U(grafts.PFBufAddr+23, 17)
		m.St8U(grafts.PFBufAddr+36, uint32(port>>8))
		m.St8U(grafts.PFBufAddr+37, uint32(port&0xff))
		return nil
	}
}

// runSwap streams frames through a versioned filter slot and commits a
// hot swap (port 80 -> port 81) halfway through, without pausing the
// stream.
func runSwap(id tech.ID) error {
	s, err := filterSlot(id, 80, 81, 0)
	if err != nil {
		return err
	}
	inc := s.Incumbent()
	cand := s.Candidate()
	fmt.Printf("slot %q: incumbent %s, candidate %s staged\n\n",
		s.Name(), inc.Artifact.Ref(), cand.Artifact.Ref())

	ports := []uint16{80, 81, 7}
	t := &stats.Table{
		Title:  fmt.Sprintf("Hot swap mid-stream (%s): filter verdict by serving version", id),
		Header: []string{"frame", "dst port", "served by", "epoch", "verdict"},
		Caption: "The swap is one atomic pointer store; in-flight invocations revalidate\n" +
			"and retry against the new version instead of being dropped. The verdict\n" +
			"column flips from port-80 to port-81 acceptance at the commit, never\n" +
			"showing a mix of both policies in one invocation.",
	}
	const frames = 12
	for i := 0; i < frames; i++ {
		if i == frames/2 {
			if err := s.Promote(); err != nil {
				return err
			}
			t.AddRow("--", "--", "-- hot swap commits --", fmt.Sprint(s.Epoch()), "--")
		}
		port := ports[i%len(ports)]
		res, err := s.Do("filter", frameFor(port), 60)
		if err != nil {
			return err
		}
		verdict := "drop"
		if res.Value == 1 {
			verdict = "accept"
		}
		t.AddRow(fmt.Sprint(i), fmt.Sprint(port),
			fmt.Sprintf("v%d", res.Version), fmt.Sprint(res.Epoch), verdict)
	}
	fmt.Println(t)
	a := s.Accounting()
	fmt.Printf("ledger: issued %d = committed %d (aborted %d, retries %d, swaps %d)\n",
		a.Issued, a.Committed, a.Aborted, a.Retried, a.Swaps)
	return nil
}

// runCanary stages a fuel-runaway filter upgrade behind 1-in-4 canary
// routing and lets the armed watchdog demote it.
func runCanary(id tech.ID) error {
	// The watchdog reads the telemetry layer, so the scenario needs it on
	// regardless of the -telemetry flag.
	wasEnabled := telemetry.Enabled()
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(wasEnabled)

	runaway := tech.Source{
		Name: "pktfilter",
		GEL: `
func filter(len) {
	var i = 0;
	while (i < 1000000) { i = i + 1; }
	return 0;
}
`,
	}
	r := lifecycle.NewRegistry()
	s := r.NewSlot("pktfilter", id,
		lifecycle.Loader(id, grafts.PFMemSize, tech.Options{Fuel: 1 << 12}))
	if err := s.Activate(tech.NewArtifact(grafts.PacketFilter, 1), func(m *mem.Memory) error {
		grafts.ConfigurePacketFilter(m, 80)
		return nil
	}); err != nil {
		return err
	}
	if err := s.Stage(tech.NewArtifact(runaway, 2), nil, 4); err != nil {
		return err
	}
	w := telemetry.NewWatchdog(telemetry.SLO{
		MaxPreemptRate: 0.5,
		MinInvocations: 16,
		Quarantine:     true,
	})
	r.Arm(w)
	fmt.Printf("slot %q: incumbent %s, canary %s at 1-in-4 routing\n",
		s.Name(), s.Incumbent().Artifact.Ref(), s.Candidate().Artifact.Ref())
	fmt.Printf("SLO: preemption rate <= 0.5 over >= 16 invocations; watchdog armed\n\n")

	var incumbentServed, canaryTraps int
	demotedAt := -1
	for i := 0; i < 128 && demotedAt < 0; i++ {
		res, err := s.Do("filter", frameFor(80), 60)
		if res.Canary {
			var tr *mem.Trap
			if errors.As(err, &tr) && tr.Kind == mem.TrapFuel {
				canaryTraps++
			}
		} else {
			if err != nil {
				return err
			}
			incumbentServed++
		}
		if i%16 == 15 {
			w.Check()
			if s.Candidate() == nil {
				demotedAt = i
			}
		}
	}
	if demotedAt < 0 {
		return fmt.Errorf("canary was never demoted")
	}
	fmt.Printf("stream: %d served by the incumbent, %d canary invocations fuel-preempted\n",
		incumbentServed, canaryTraps)
	for _, e := range r.Events() {
		fmt.Printf("guard: %s of %s v%d (violation on %q: %s)\n",
			e.Action, e.Slot, e.Version, e.Violation.Graft, e.Violation.Reason)
	}
	fmt.Printf("canary demoted after invocation %d; routing is 100%% incumbent again\n", demotedAt)
	a := s.Accounting()
	fmt.Printf("ledger: issued %d = committed %d (aborted %d, demotions %d)\n",
		a.Issued, a.Committed, a.Aborted, a.Demotions)
	return nil
}
