package main

import (
	"fmt"
	"time"

	"graftlab/internal/grafts"
	"graftlab/internal/kernel"
	"graftlab/internal/mem"
	"graftlab/internal/stats"
	"graftlab/internal/tech"
	"graftlab/internal/vclock"
	"graftlab/internal/workload"
)

// runSched demonstrates the scheduler Prioritization hook: a client-server
// mix where the graft keeps the servers ahead of the clients (§3.1).
func runSched(id tech.ID) error {
	build := func(withGraft bool) (*kernel.Scheduler, []*kernel.Proc, error) {
		s := kernel.NewScheduler(time.Millisecond, &vclock.Clock{})
		procs := []*kernel.Proc{
			s.Spawn("client-a", 1),
			s.Spawn("client-b", 1),
			s.Spawn("server-1", 2),
			s.Spawn("server-2", 2),
		}
		if withGraft {
			g, err := tech.Load(id, grafts.SchedPolicy, mem.New(grafts.SCMemSize), tech.Options{})
			if err != nil {
				return nil, nil, err
			}
			s.SetPolicy(grafts.NewGraftSchedPolicy(g))
		}
		return s, procs, nil
	}

	t := &stats.Table{
		Title:  fmt.Sprintf("Scheduler hook (%s): 100 quanta over 2 clients + 2 servers", id),
		Header: []string{"configuration", "client time", "server time", "overrides"},
	}
	for _, withGraft := range []bool{false, true} {
		s, procs, err := build(withGraft)
		if err != nil {
			return err
		}
		for i := 0; i < 100; i++ {
			if _, err := s.Tick(); err != nil {
				return err
			}
		}
		var client, server time.Duration
		for _, p := range procs {
			if p.Tag == 2 {
				server += p.Runtime
			} else {
				client += p.Runtime
			}
		}
		name := "round-robin"
		overrides := "-"
		if withGraft {
			name = "server-priority graft"
			overrides = fmt.Sprint(s.Stats().PolicyOverrides)
		}
		t.AddRow(name, client.String(), server.String(), overrides)
	}
	fmt.Println(t)
	fmt.Println("The graft starves clients in favor of servers — §3.1's client-server")
	fmt.Println("scheduling example, enforced by downloaded policy instead of kernel code.")
	return nil
}

// runCache demonstrates the Cao-style buffer cache: the policy menu
// (LRU, MRU) against the graft hook on a hot-set-plus-scans workload.
func runCache(id tech.ID) error {
	hot := []uint32{9001, 9002, 9003, 9004}
	workloadAccesses := func() []uint32 {
		var acc []uint32
		rng := workload.NewRNG(5)
		for burst := 0; burst < 200; burst++ {
			acc = append(acc, hot...)
			for i := 0; i < 12; i++ {
				acc = append(acc, rng.Uint32n(2000))
			}
		}
		return acc
	}()

	run := func(policy kernel.CachePolicy, useGraft bool) (kernel.CacheStats, error) {
		c, err := kernel.NewBufferCache(8)
		if err != nil {
			return kernel.CacheStats{}, err
		}
		c.SetPolicy(policy)
		if useGraft {
			m := mem.New(grafts.BCMemSize)
			g, err := tech.Load(id, grafts.CacheHook, m, tech.Options{})
			if err != nil {
				return kernel.CacheStats{}, err
			}
			grafts.NewPinSet(m).Set(hot)
			c.SetHook(grafts.NewGraftCacheHook(g))
		}
		for _, b := range workloadAccesses {
			if _, _, err := c.Get(b); err != nil {
				return kernel.CacheStats{}, err
			}
		}
		return c.Stats(), nil
	}

	t := &stats.Table{
		Title:  fmt.Sprintf("Buffer cache (%s): hot set revisited between scan bursts, 8-block cache", id),
		Header: []string{"policy", "hits", "misses", "hit rate"},
		Caption: "LRU and MRU are the Cao-style compiled-in menu; the graft pins the hot\n" +
			"set — the policy the menu could not have anticipated (§2).",
	}
	for _, cfg := range []struct {
		name   string
		policy kernel.CachePolicy
		graft  bool
	}{
		{"menu: LRU", kernel.CacheLRU, false},
		{"menu: MRU", kernel.CacheMRU, false},
		{"graft: pin hot set", kernel.CacheLRU, true},
	} {
		st, err := run(cfg.policy, cfg.graft)
		if err != nil {
			return err
		}
		total := st.Hits + st.Misses
		t.AddRow(cfg.name, fmt.Sprint(st.Hits), fmt.Sprint(st.Misses),
			fmt.Sprintf("%.1f%%", 100*float64(st.Hits)/float64(total)))
	}
	fmt.Println(t)
	return nil
}

// runReadahead demonstrates the Black Box read-ahead hook from §3.3 and
// Table 3's caption.
func runReadahead() error {
	scan := func(withHint bool) (kernel.PagerStats, kernel.ReadAheadStats, time.Duration, error) {
		clock := &vclock.Clock{}
		p, err := kernel.NewPager(kernel.PagerConfig{Frames: 64, FaultTime: 14 * time.Millisecond}, clock)
		if err != nil {
			return kernel.PagerStats{}, kernel.ReadAheadStats{}, 0, err
		}
		if withHint {
			p.SetReadAhead(kernel.ReadAheadFunc(func(f kernel.PageID) []kernel.PageID {
				out := make([]kernel.PageID, 15)
				for i := range out {
					out[i] = f + kernel.PageID(i) + 1
				}
				return out
			}), time.Millisecond)
		}
		for pg := kernel.PageID(0); pg < 2048; pg++ {
			if _, err := p.Access(pg); err != nil {
				return kernel.PagerStats{}, kernel.ReadAheadStats{}, 0, err
			}
		}
		return p.Stats(), p.ReadAheadStats(), clock.Now(), nil
	}

	t := &stats.Table{
		Title:  "Read-ahead hook: sequential scan of 2048 pages, 64 frames",
		Header: []string{"configuration", "faults", "prefetched", "useful", "I/O time"},
	}
	for _, withHint := range []bool{false, true} {
		st, ra, vt, err := scan(withHint)
		if err != nil {
			return err
		}
		name := "no read-ahead"
		if withHint {
			name = "sequential-hint graft"
		}
		t.AddRow(name, fmt.Sprint(st.Faults), fmt.Sprint(ra.Prefetched),
			fmt.Sprint(ra.Useful), stats.FormatDuration(vt))
	}
	fmt.Println(t)
	fmt.Println("With application knowledge of the access order, one 14ms fault amortizes")
	fmt.Println("fifteen 1ms prefetches — Table 3's read-ahead observation, graftable.")
	return nil
}
