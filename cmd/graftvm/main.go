// Command graftvm runs a GEL graft standalone under any extension
// technology, for trying grafts outside the kernel simulator.
//
// Usage:
//
//	graftvm -tech native-unsafe -entry main graft.gel 1 2 3
//	graftvm -tech bytecode -fuel 1000000 graft.gel
//	graftvm -list
//
// Arguments after the source file are u32 values passed to the entry
// point. The result and any trap are printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

func main() {
	var (
		techName = flag.String("tech", string(tech.NativeUnsafe), "technology to load under")
		entry    = flag.String("entry", "main", "entry point function")
		memBits  = flag.Uint("membits", 20, "log2 of linear memory size")
		fuel     = flag.Int64("fuel", 0, "execution budget (0 = unmetered)")
		vmMode   = flag.String("vm", "", `bytecode engine: "opt" (default) or "baseline"`)
		list     = flag.Bool("list", false, "list technologies and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range tech.All {
			fmt.Printf("%-16s %s\n", id, tech.PaperName(id))
		}
		return
	}
	if err := run(*techName, *entry, *memBits, *fuel, *vmMode, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "graftvm: %v\n", err)
		os.Exit(1)
	}
}

func run(techName, entry string, memBits uint, fuel int64, vmMode string, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: graftvm [flags] graft.gel [args...]")
	}
	mode, err := tech.ParseVMMode(vmMode)
	if err != nil {
		return err
	}
	srcBytes, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	var callArgs []uint32
	for _, a := range args[1:] {
		v, err := strconv.ParseUint(a, 0, 32)
		if err != nil {
			return fmt.Errorf("argument %q: %w", a, err)
		}
		callArgs = append(callArgs, uint32(v))
	}
	if memBits < 3 || memBits > 30 {
		return fmt.Errorf("membits %d out of range [3,30]", memBits)
	}
	src := tech.Source{Name: args[0], GEL: string(srcBytes), Tcl: string(srcBytes)}
	if tech.ID(techName) == tech.Domain {
		// Under the domain class the file is HiPEC assembler for the
		// single entry point named by -entry.
		src = tech.Source{Name: args[0], Hipec: map[string]string{entry: string(srcBytes)}}
	}
	m := mem.New(1 << memBits)
	g, err := tech.Load(tech.ID(techName), src, m, tech.Options{Fuel: fuel, VM: mode})
	if err != nil {
		return err
	}
	v, err := g.Invoke(entry, callArgs...)
	if err != nil {
		return fmt.Errorf("%s(%v): %w", entry, callArgs, err)
	}
	fmt.Printf("%s(%v) = %d (0x%x)\n", entry, callArgs, v, v)
	return nil
}
