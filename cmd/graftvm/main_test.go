package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeGraft(t *testing.T) string {
	t.Helper()
	src := filepath.Join(t.TempDir(), "g.gel")
	err := os.WriteFile(src, []byte(`
func main(a, b) { return a * 10 + b; }
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestRunUnderEachTechnology(t *testing.T) {
	src := writeGraft(t)
	for _, techName := range []string{"native-unsafe", "native-safe", "sfi", "bytecode"} {
		if err := run(techName, "main", 16, 0, "", []string{src, "4", "2"}); err != nil {
			t.Errorf("%s: %v", techName, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	src := writeGraft(t)
	if err := run("native-unsafe", "main", 16, 0, "", nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run("no-such-tech", "main", 16, 0, "", []string{src}); err == nil {
		t.Error("unknown tech accepted")
	}
	if err := run("native-unsafe", "nope", 16, 0, "", []string{src}); err == nil {
		t.Error("unknown entry accepted")
	}
	if err := run("native-unsafe", "main", 16, 0, "", []string{src, "notanumber"}); err == nil {
		t.Error("bad argument accepted")
	}
	if err := run("native-unsafe", "main", 2, 0, "", []string{src, "1", "2"}); err == nil {
		t.Error("absurd membits accepted")
	}
	if err := run("native-unsafe", "main", 16, 0, "", []string{"/nonexistent.gel"}); err == nil {
		t.Error("missing file accepted")
	}
	// Compiled-class technologies need a hand-written implementation;
	// loading arbitrary source under them must fail cleanly.
	if err := run("compiled-unsafe", "main", 16, 0, "", []string{src, "1", "2"}); err == nil {
		t.Error("compiled class accepted arbitrary source")
	}
}

func TestDomainClassRunsHipecSource(t *testing.T) {
	src := filepath.Join(t.TempDir(), "sum.hasm")
	os.WriteFile(src, []byte(`
	movi r1, 0
	movi r2, 1
loop:
	jlt r0, r2, done
	add r1, r1, r2
	addi r2, r2, 1
	jmp loop
done:
	ret r1
`), 0o644)
	if err := run("domain", "main", 16, 0, "", []string{src, "100"}); err != nil {
		t.Fatalf("domain run: %v", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.hasm")
	os.WriteFile(bad, []byte("jmp nowhere"), 0o644)
	if err := run("domain", "main", 16, 0, "", []string{bad}); err == nil {
		t.Error("bad hipec accepted")
	}
}

func TestFuelFlag(t *testing.T) {
	src := filepath.Join(t.TempDir(), "spin.gel")
	os.WriteFile(src, []byte(`func main() { while (1) { } return 0; }`), 0o644)
	for _, mode := range []string{"", "opt", "baseline"} {
		if err := run("bytecode", "main", 16, 10000, mode, []string{src}); err == nil {
			t.Errorf("vm=%q: runaway graft not preempted", mode)
		}
	}
	if err := run("bytecode", "main", 16, 10000, "nonsense", []string{src}); err == nil {
		t.Error("bad -vm value accepted")
	}
}
