package main

import (
	"os"
	"path/filepath"
	"testing"
)

const goodSrc = `
func helper(a) { return a * 2; }
func main(n) { return helper(n) + 1; }
`

func TestCompileDisassembleVerify(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "g.gel")
	out := filepath.Join(dir, "g.gbc")
	if err := os.WriteFile(src, []byte(goodSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(src, out, "", "", "", "", false); err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("module not written: %v", err)
	}
	if err := run("", "", out, "", "", "", false); err != nil {
		t.Fatalf("disassemble: %v", err)
	}
	if err := run("", "", "", out, "", "", false); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := run("", "", "", "", src, "", false); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestCompileToStdout(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "g.gel")
	if err := os.WriteFile(src, []byte(goodSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(src, "", "", "", "", "", false); err != nil {
		t.Fatalf("compile without -o: %v", err)
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.gel")
	os.WriteFile(bad, []byte("func broken("), 0o644)
	if err := run(bad, "", "", "", "", "", false); err == nil {
		t.Error("bad source compiled")
	}
	if err := run("", "", "", "", bad, "", false); err == nil {
		t.Error("bad source checked")
	}
	notMod := filepath.Join(dir, "junk.gbc")
	os.WriteFile(notMod, []byte("not a module"), 0o644)
	if err := run("", "", notMod, "", "", "", false); err == nil {
		t.Error("junk disassembled")
	}
	if err := run("", "", "", notMod, "", "", false); err == nil {
		t.Error("junk verified")
	}
	if err := run("/nonexistent.gel", "", "", "", "", "", false); err == nil {
		t.Error("missing file compiled")
	}
	if err := run("", "", "", "", "", "", false); err == nil {
		t.Error("no mode accepted")
	}
}

func TestHipecMode(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "f.hasm")
	os.WriteFile(good, []byte("movi r0, 7\nret r0\n"), 0o644)
	if err := run("", "", "", "", "", good, false); err != nil {
		t.Fatalf("hipec assemble: %v", err)
	}
	bad := filepath.Join(dir, "bad.hasm")
	os.WriteFile(bad, []byte("jmp nowhere\n"), 0o644)
	if err := run("", "", "", "", "", bad, false); err == nil {
		t.Error("bad hipec assembled")
	}
	if err := run("", "", "", "", "", "/nonexistent.hasm", false); err == nil {
		t.Error("missing hipec file accepted")
	}
}

func TestOptimizeFlag(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "o.gel")
	os.WriteFile(src, []byte("func main() { return 2 + 3; }"), 0o644)
	if err := run(src, "", "", "", "", "", true); err != nil {
		t.Fatalf("optimized compile: %v", err)
	}
}
