// Command graftc is the GEL toolchain driver: compile graft source to a
// binary bytecode module, disassemble modules, and run the load-time
// verifier — the checks a kernel would perform before accepting a graft.
//
// Usage:
//
//	graftc -c graft.gel -o graft.gbc     compile
//	graftc -d graft.gbc                  disassemble
//	graftc -verify graft.gbc             verify only
//	graftc -check graft.gel              parse and typecheck only
//	graftc -O ...                        constant-fold before compiling
//	graftc -hipec prog.hasm              assemble+verify a domain program
package main

import (
	"flag"
	"fmt"
	"os"

	"graftlab/internal/bytecode"
	"graftlab/internal/compile"
	"graftlab/internal/gel"
	"graftlab/internal/hipec"
)

func main() {
	var (
		compileSrc = flag.String("c", "", "compile GEL source file to bytecode")
		out        = flag.String("o", "", "output path for -c (default: stdout disassembly note)")
		disasm     = flag.String("d", "", "disassemble a bytecode module")
		verify     = flag.String("verify", "", "verify a bytecode module")
		check      = flag.String("check", "", "parse and typecheck GEL source only")
		optimize   = flag.Bool("O", false, "constant-fold before compiling")
		hipecSrc   = flag.String("hipec", "", "assemble and verify a HiPEC-class domain program")
	)
	flag.Parse()

	if err := run(*compileSrc, *out, *disasm, *verify, *check, *hipecSrc, *optimize); err != nil {
		fmt.Fprintf(os.Stderr, "graftc: %v\n", err)
		os.Exit(1)
	}
}

func run(compileSrc, out, disasm, verify, check, hipecSrc string, optimize bool) error {
	switch {
	case hipecSrc != "":
		src, err := os.ReadFile(hipecSrc)
		if err != nil {
			return err
		}
		p, err := hipec.Assemble(string(src))
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d instructions verify\n", hipecSrc, len(p.Code))
		fmt.Print(hipec.Disassemble(p))
		return nil
	case compileSrc != "":
		src, err := os.ReadFile(compileSrc)
		if err != nil {
			return err
		}
		prog, err := gel.ParseAndCheck(string(src))
		if err != nil {
			return err
		}
		if optimize {
			gel.Fold(prog)
		}
		mod, err := compile.Compile(prog)
		if err != nil {
			return err
		}
		bin := bytecode.Encode(mod)
		if out == "" {
			fmt.Printf("%d functions, %d bytes; pass -o to write the module\n", len(mod.Funcs), len(bin))
			fmt.Print(bytecode.Disassemble(mod))
			return nil
		}
		if err := os.WriteFile(out, bin, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes, %d functions)\n", out, len(bin), len(mod.Funcs))
		return nil
	case disasm != "":
		mod, err := loadModule(disasm)
		if err != nil {
			return err
		}
		fmt.Print(bytecode.Disassemble(mod))
		return nil
	case verify != "":
		mod, err := loadModule(verify)
		if err != nil {
			return err
		}
		if err := bytecode.Verify(mod); err != nil {
			return err
		}
		fmt.Printf("%s: %d functions verify\n", verify, len(mod.Funcs))
		return nil
	case check != "":
		src, err := os.ReadFile(check)
		if err != nil {
			return err
		}
		prog, err := gel.ParseAndCheck(string(src))
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d functions check\n", check, len(prog.Funcs))
		return nil
	}
	flag.Usage()
	return fmt.Errorf("one of -c, -d, -verify, -check is required")
}

func loadModule(path string) (*bytecode.Module, error) {
	bin, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return bytecode.Decode(bin)
}
