// Command graftmon is a top-like live viewer for a graftlab process's
// telemetry export surface. Point it at a process started with
// -metrics-addr (graftbench, kernelsim, or anything embedding
// telemetry.NewMetricsHandler) and it renders the windowed view — one
// row per (graft, technology) pair with trailing-window rates,
// quantiles, and deployment state — refreshed on an interval.
//
// Usage:
//
//	graftmon [-addr localhost:9090] [-window 10s] [-interval 1s]
//	         [-once] [-sort rate] [-top 0]
//	graftmon -check [-addr ...] [-window 5m]
//
// -once renders a single frame and exits (no screen clearing), for
// scripts and logs. -check is the CI gate: it scrapes /metrics,
// verifies the exposition parses as Prometheus text and carries a
// non-empty windowed p99, cross-checks /debug/telemetry.json, and
// exits non-zero on any failure. CI runs -check with a wide -window
// (e.g. 5m) so the gap between the benchmark finishing and the scrape
// cannot drain the fast buckets and flake the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"graftlab/internal/stats"
	"graftlab/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:9090", "export surface to watch (host:port)")
		window   = flag.Duration("window", telemetry.DefaultExportWindow, "trailing aggregation window")
		interval = flag.Duration("interval", time.Second, "refresh interval in live mode")
		once     = flag.Bool("once", false, "render one frame and exit")
		check    = flag.Bool("check", false, "CI mode: validate /metrics and /debug/telemetry.json, exit non-zero on failure")
		sortKey  = flag.String("sort", "rate", "row order: rate, p99, trap, fuel, or name")
		top      = flag.Int("top", 0, "show only the first N rows after sorting (0 = all)")
	)
	flag.Parse()
	client := &http.Client{Timeout: 5 * time.Second}
	base := "http://" + *addr

	if *check {
		summary, err := runCheck(client, base, *window)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graftmon: check failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(summary)
		return
	}

	frames := 0
	for {
		dump, err := fetchDump(client, base, *window)
		if err != nil {
			if frames > 0 {
				// The watched process finishing its run is the normal way a
				// live session ends.
				fmt.Printf("graftmon: %s went away after %d frames (%v)\n", *addr, frames, err)
				return
			}
			fmt.Fprintf(os.Stderr, "graftmon: %v\n", err)
			os.Exit(1)
		}
		if !*once && frames > 0 {
			fmt.Print("\033[H\033[2J")
		}
		renderDump(os.Stdout, *addr, dump, *sortKey, *top)
		frames++
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// fetchDump pulls one /debug/telemetry.json document.
func fetchDump(c *http.Client, base string, window time.Duration) (*telemetry.DebugDump, error) {
	resp, err := c.Get(fmt.Sprintf("%s/debug/telemetry.json?window=%s", base, window))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/debug/telemetry.json: %s", resp.Status)
	}
	var dump telemetry.DebugDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return nil, fmt.Errorf("/debug/telemetry.json: %v", err)
	}
	return &dump, nil
}

// sortRows orders the windowed snapshots for display. Unknown keys fall
// back to rate. Ties (and the name key) break alphabetically so the
// table is stable frame to frame.
func sortRows(rows []telemetry.WindowSnapshot, key string) {
	less := func(a, b telemetry.WindowSnapshot) bool {
		byName := a.Graft < b.Graft || (a.Graft == b.Graft && a.Tech < b.Tech)
		switch key {
		case "name":
			return byName
		case "p99":
			if a.P99 != b.P99 {
				return a.P99 > b.P99
			}
		case "trap":
			if a.TrapRatio != b.TrapRatio {
				return a.TrapRatio > b.TrapRatio
			}
		case "fuel":
			if a.FuelPerSec != b.FuelPerSec {
				return a.FuelPerSec > b.FuelPerSec
			}
		default: // rate
			if a.Rate != b.Rate {
				return a.Rate > b.Rate
			}
		}
		return byName
	}
	sort.SliceStable(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
}

// stateLabel renders the deployment/health column: the lifecycle note
// ("canary", "incumbent", ...) when present, with quarantine flagged
// loudly on top of it.
func stateLabel(s telemetry.WindowSnapshot) string {
	state := s.Note
	if state == "" {
		state = "-"
	}
	if s.Quarantined {
		state += " [QUARANTINED]"
	}
	return state
}

// renderDump writes one frame: a header line and the per-pair table.
func renderDump(w io.Writer, addr string, d *telemetry.DebugDump, sortKey string, top int) {
	fmt.Fprintf(w, "graftmon %s  window=%v  buckets=%d x %v  telemetry=%v\n",
		addr, d.Window, d.WindowConfig.Buckets, d.WindowConfig.Width, d.Enabled)
	rows := append([]telemetry.WindowSnapshot(nil), d.Windowed...)
	sortRows(rows, sortKey)
	shown := len(rows)
	if top > 0 && top < shown {
		shown = top
	}
	t := &stats.Table{
		Title:  fmt.Sprintf("Trailing %v per (graft, tech)", d.Window),
		Header: []string{"graft", "tech", "state", "inv/s", "trap%", "fuel/s", "p50", "p99", "invocations"},
	}
	for _, r := range rows[:shown] {
		t.AddRow(r.Graft, r.Tech, stateLabel(r),
			fmt.Sprintf("%.1f", r.Rate),
			fmt.Sprintf("%.1f", 100*r.TrapRatio),
			fmt.Sprintf("%.0f", r.FuelPerSec),
			stats.FormatDuration(r.P50), stats.FormatDuration(r.P99),
			fmt.Sprint(r.Invocations))
	}
	fmt.Fprintln(w, t)
	if shown < len(rows) {
		fmt.Fprintf(w, "(%d of %d pairs shown; -top 0 for all)\n", shown, len(rows))
	}
}

// runCheck is the CI gate behind -check: the exposition must parse as
// Prometheus text, be non-empty, and carry a positive windowed p99; the
// JSON dump must agree that telemetry is on and windows are populated.
func runCheck(c *http.Client, base string, window time.Duration) (string, error) {
	resp, err := c.Get(fmt.Sprintf("%s/metrics?window=%s", base, window))
	if err != nil {
		return "", err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return "", fmt.Errorf("/metrics: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("/metrics: %s", resp.Status)
	}
	samples, err := telemetry.ParsePromText(string(body))
	if err != nil {
		return "", fmt.Errorf("/metrics is not valid Prometheus text: %v", err)
	}
	if len(samples) == 0 {
		return "", fmt.Errorf("/metrics exposition is empty")
	}
	p99 := telemetry.FindProm(samples, "graftlab_window_latency_seconds", "quantile", "0.99")
	if len(p99) == 0 {
		return "", fmt.Errorf("no windowed p99 samples in a %v window — did the run record latencies?", window)
	}
	positive := 0
	for _, s := range p99 {
		if s.Value > 0 {
			positive++
		}
	}
	if positive == 0 {
		return "", fmt.Errorf("all %d windowed p99 samples are zero", len(p99))
	}

	dump, err := fetchDump(c, base, window)
	if err != nil {
		return "", err
	}
	if !dump.Enabled {
		return "", fmt.Errorf("server reports telemetry disabled")
	}
	if len(dump.Windowed) == 0 {
		return "", fmt.Errorf("/debug/telemetry.json has no windowed snapshots")
	}

	names := make(map[string]bool)
	for _, s := range samples {
		if strings.HasPrefix(s.Name, "graftlab_") {
			names[s.Name] = true
		}
	}
	return fmt.Sprintf("check ok: %d samples across %d graftlab_* series, %d pairs windowed, %d positive p99(s) at window=%v",
		len(samples), len(names), len(dump.Windowed), positive, window), nil
}
