package main

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"graftlab/internal/mem"
	"graftlab/internal/telemetry"
)

// startPopulatedServer brings up a real export surface on a loopback
// port with one busy pair and one quarantined canary behind it.
func startPopulatedServer(t *testing.T) string {
	t.Helper()
	telemetry.SetEnabled(true)
	t.Cleanup(func() { telemetry.SetEnabled(false) })

	m := telemetry.Register("monGraft", "bytecode")
	m.AddInvocations(1024)
	m.AddFuel(1 << 16)
	for i := 0; i < 64; i++ {
		m.RecordLatency(time.Duration(i+1) * time.Microsecond)
	}
	m.RecordError(&mem.Trap{Kind: mem.TrapFuel})

	q := telemetry.Register("monCanary", "script")
	q.AddInvocations(64)
	q.SetNote("canary")
	q.Quarantine()
	t.Cleanup(q.Unquarantine)

	srv, err := telemetry.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

func TestFetchAndRender(t *testing.T) {
	addr := startPopulatedServer(t)
	client := &http.Client{Timeout: 5 * time.Second}

	dump, err := fetchDump(client, "http://"+addr, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !dump.Enabled {
		t.Fatal("dump claims telemetry disabled")
	}
	if len(dump.Windowed) < 2 {
		t.Fatalf("windowed pairs = %d, want both registered grafts", len(dump.Windowed))
	}

	var b strings.Builder
	renderDump(&b, addr, dump, "rate", 0)
	out := b.String()
	for _, want := range []string{"monGraft", "monCanary", "canary [QUARANTINED]", "Trailing 30s"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered frame missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	renderDump(&b, addr, dump, "rate", 1)
	out = b.String()
	// monGraft's 1024 invocations out-rate monCanary's 64, so -top 1
	// keeps only monGraft.
	if !strings.Contains(out, "monGraft") || strings.Contains(out, "monCanary") {
		t.Errorf("-top 1 by rate should keep only monGraft:\n%s", out)
	}
	if !strings.Contains(out, "1 of 2 pairs shown") {
		t.Errorf("truncation note missing:\n%s", out)
	}
}

func TestSortRows(t *testing.T) {
	rows := []telemetry.WindowSnapshot{
		{Graft: "b", Tech: "x", Rate: 10, P99: time.Millisecond},
		{Graft: "a", Tech: "x", Rate: 10, P99: time.Second},
		{Graft: "c", Tech: "x", Rate: 99, P99: time.Microsecond},
	}
	sortRows(rows, "rate")
	if rows[0].Graft != "c" || rows[1].Graft != "a" || rows[2].Graft != "b" {
		t.Errorf("rate sort order = %s,%s,%s", rows[0].Graft, rows[1].Graft, rows[2].Graft)
	}
	sortRows(rows, "p99")
	if rows[0].Graft != "a" || rows[2].Graft != "c" {
		t.Errorf("p99 sort order = %s,%s,%s", rows[0].Graft, rows[1].Graft, rows[2].Graft)
	}
	sortRows(rows, "name")
	if rows[0].Graft != "a" || rows[1].Graft != "b" || rows[2].Graft != "c" {
		t.Errorf("name sort order = %s,%s,%s", rows[0].Graft, rows[1].Graft, rows[2].Graft)
	}
}

func TestRunCheck(t *testing.T) {
	addr := startPopulatedServer(t)
	client := &http.Client{Timeout: 5 * time.Second}

	summary, err := runCheck(client, "http://"+addr, 30*time.Second)
	if err != nil {
		t.Fatalf("check against a populated server: %v", err)
	}
	if !strings.Contains(summary, "check ok") {
		t.Errorf("summary = %q", summary)
	}

	// Unreachable server fails rather than passing vacuously.
	if _, err := runCheck(client, "http://127.0.0.1:1", time.Second); err == nil {
		t.Error("check against a dead address passed")
	}
}
