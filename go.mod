module graftlab

go 1.22
