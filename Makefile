# graftlab build targets. Everything is plain `go` underneath; the
# Makefile just names the common workflows.

GO ?= go

.PHONY: all build test test-short race cover bench bench-smoke check experiments quick-experiments examples clean

all: build test

# Tier-1 gate: compile + vet + tests + every benchmark exercised once.
check: build test bench-smoke

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One testing.B benchmark per paper table/figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem -run XXX .

# Run every benchmark exactly once — catches bit-rot in benchmark-only
# code paths without paying measurement time.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run XXX .

# Regenerate the paper's evaluation (Tables 1-6, Figure 1, ablations,
# packet filter). Minutes at paper scale; use quick-experiments for CI.
experiments:
	$(GO) run ./cmd/graftbench -figure1-csv figure1.csv

quick-experiments:
	$(GO) run ./cmd/graftbench -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pageevict
	$(GO) run ./examples/md5stream
	$(GO) run ./examples/logicaldisk
	$(GO) run ./examples/packetfilter
	$(GO) run ./examples/fastpath
	$(GO) run ./cmd/kernelsim -scenario all

clean:
	$(GO) clean ./...
	rm -f figure1.csv test_output.txt bench_output.txt
