# graftlab build targets. Everything is plain `go` underneath; the
# Makefile just names the common workflows.

GO ?= go

.PHONY: all build test test-short race stress cover cover-check conformance-short fuzz-smoke bench bench-smoke bench-check bench-report bench-baseline check experiments quick-experiments examples clean

all: build test

# Tier-1 gate: compile + vet + tests + a fast conformance pass + every
# benchmark exercised once. The full conformance suite already runs as
# part of `test`; the explicit -short pass keeps the gate honest even if
# the test matrix is filtered.
check: build test conformance-short bench-smoke

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Concurrency stress suite under the race detector: pooled instances
# hammered from many goroutines, the sharded pager, and the concurrent
# conformance pass. A subset of `race`, kept separate so CI reports
# data races in the multicore layer as their own failure.
stress:
	$(GO) test -race -count=1 -run 'Stress|Concurrent' ./...

# COVER_FLOOR is the recorded baseline (82.2% when set): cover-check
# fails if total statement coverage drops below it. Raise it when
# coverage durably improves; never lower it to make a PR pass.
COVER_FLOOR ?= 80.0

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

cover-check: cover
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% fell below the floor $(COVER_FLOOR)%"; exit 1; }

# Cross-technology conformance oracle, reduced program counts: the fast
# gate every change must clear before the full suite runs in CI.
conformance-short:
	$(GO) test -short -count=1 ./internal/conformance

# Native fuzz targets, a few seconds each: catches trivially reachable
# panics without a dedicated fuzzing farm. FUZZTIME is per target.
FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) -run XXX ./internal/gel
	$(GO) test -fuzz=FuzzInterp -fuzztime=$(FUZZTIME) -run XXX ./internal/script
	$(GO) test -fuzz=FuzzVerify -fuzztime=$(FUZZTIME) -run XXX ./internal/aot
	$(GO) test -fuzz=FuzzDeliver -fuzztime=$(FUZZTIME) -run XXX ./internal/netsim
	$(GO) test -fuzz=FuzzSwap -fuzztime=$(FUZZTIME) -run XXX ./internal/lifecycle

# One testing.B benchmark per paper table/figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem -run XXX .

# Run every benchmark exactly once — catches bit-rot in benchmark-only
# code paths without paying measurement time.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run XXX .

# Regression gate: rerun Table 5, the batched packet filter, and the
# lifecycle swap-under-load experiment at quick scale and compare against
# the committed baseline. A cell fails only when it is more than 45%
# worse AND the move is significant against both samples' variance
# (Cohen's |d| >= 0.8) — shared-runner noise reads `noise`, not
# `regression`. See docs/benchmarking.md for the gate's rules.
bench-check:
	$(GO) run ./cmd/graftbench -quick -experiment table5,pktfilter-batch,swap-under-load -check-against BENCH_baseline.json -check-tolerance 0.45 -check-effect 0.8

# Full quick-scale suite with generated artifacts: results.json,
# results.csv (the flattened cell matrix), and REPORT.md (methodology,
# stability flags, effect-size verdicts) land in bench-report/.
bench-report:
	$(GO) run ./cmd/graftbench -quick -report-dir bench-report -check-against BENCH_baseline.json -check-tolerance 0.45 -check-effect 0.8

# Re-archive the baseline the gate compares against (Table 5, the
# batched packet filter, and swap-under-load). Run on a quiet machine;
# commit the result deliberately.
bench-baseline:
	$(GO) run ./cmd/graftbench -quick -experiment table5,pktfilter-batch,swap-under-load -json-out BENCH_baseline.json

# Regenerate the paper's evaluation (Tables 1-6, Figure 1, ablations,
# packet filter). Minutes at paper scale; use quick-experiments for CI.
experiments:
	$(GO) run ./cmd/graftbench -figure1-csv figure1.csv

quick-experiments:
	$(GO) run ./cmd/graftbench -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pageevict
	$(GO) run ./examples/md5stream
	$(GO) run ./examples/logicaldisk
	$(GO) run ./examples/packetfilter
	$(GO) run ./examples/fastpath
	$(GO) run ./cmd/kernelsim -scenario all

clean:
	$(GO) clean ./...
	rm -f figure1.csv test_output.txt bench_output.txt coverage.out
	rm -rf bench-report
