// Package graftlab's root benchmark suite: one testing.B benchmark per
// table and figure of the paper, runnable with
//
//	go test -bench=. -benchmem
//
// These are the same workloads cmd/graftbench drives, expressed as Go
// benchmarks so `go test -bench` regenerates the evaluation too.
package graftlab

import (
	"fmt"
	"os"
	"testing"
	"time"

	"graftlab/internal/bench"
	"graftlab/internal/compile"
	"graftlab/internal/disk"
	"graftlab/internal/gel"
	"graftlab/internal/grafts"
	"graftlab/internal/kernel"
	"graftlab/internal/lmb"
	"graftlab/internal/md5x"
	"graftlab/internal/mem"
	"graftlab/internal/netsim"
	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
	"graftlab/internal/upcall"
	"graftlab/internal/vclock"
	"graftlab/internal/vm"
	"graftlab/internal/workload"
)

func TestMain(m *testing.M) {
	upcall.SignalChildMain() // Table 1 child mode
	os.Exit(m.Run())
}

// table2Techs are the technologies benchmarked per graft. The domain
// class appears only where its language can express the graft (eviction
// and packet filtering; not MD5 or the Logical Disk, which need stores).
var table2Techs = []tech.ID{
	tech.CompiledUnsafe, tech.CompiledSafe, tech.CompiledSafeNil,
	tech.CompiledSFI, tech.CompiledSFIFull,
	tech.NativeUnsafe, tech.Bytecode, tech.AOT, tech.Script,
}

var readOnlyGraftTechs = append(append([]tech.ID{}, table2Techs...), tech.Domain)

// ---- Table 1 ----

func BenchmarkTable1SignalDelivery(b *testing.B) {
	exe, err := os.Executable()
	if err != nil {
		b.Fatal(err)
	}
	iters := b.N
	if iters > 2000 {
		iters = 2000
	}
	res, err := upcall.MeasureSignal(exe, upcall.DefaultSignalBatch, iters)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.PerSignal.Nanoseconds()), "ns/signal")
}

func BenchmarkTable1GoroutineCrossing(b *testing.B) {
	g, err := tech.Load(tech.CompiledUnsafe, grafts.LDMap, mem.New(grafts.LDMemSize), tech.Options{})
	if err != nil {
		b.Fatal(err)
	}
	d := upcall.NewDomain(g, 0)
	defer d.Close()
	if _, err := grafts.NewGraftMapper(d, 1024); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Invoke("ld_read", uint32(i)%1024); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table 2 ----

// evictSetup builds the Table 2 scenario: 64-entry hot list, LRU chain in
// graft memory, candidate not hot.
func evictSetup(b *testing.B, id tech.ID, opts tech.Options) (func(args []uint32) (uint32, error), uint32) {
	b.Helper()
	m := mem.New(grafts.PEMemSize)
	g, err := tech.Load(id, grafts.PageEvict, m, opts)
	if err != nil {
		b.Fatal(err)
	}
	clock := &vclock.Clock{}
	pager, err := kernel.NewPager(kernel.PagerConfig{
		Frames: 256, Mem: m, NodeBase: grafts.PELRUNodeBase,
	}, clock)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if _, err := pager.Access(kernel.PageID(100 + i)); err != nil {
			b.Fatal(err)
		}
	}
	hot := grafts.NewHotList(m)
	pages := make([]kernel.PageID, 64)
	for i := range pages {
		pages[i] = kernel.PageID(500000 + i)
	}
	hot.Set(pages)
	return tech.ResolveDirect(g, "evict"), pager.HeadAddr()
}

func BenchmarkTable2PageEvict(b *testing.B) {
	for _, id := range readOnlyGraftTechs {
		b.Run(string(id), func(b *testing.B) {
			call, head := evictSetup(b, id, tech.Options{})
			args := []uint32{head}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := call(args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("bytecode-baseline", func(b *testing.B) {
		call, head := evictSetup(b, tech.Bytecode, tech.Options{VM: tech.VMBaseline})
		args := []uint32{head}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := call(args); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("upcall-server", func(b *testing.B) {
		m := mem.New(grafts.PEMemSize)
		g, err := tech.Load(tech.CompiledUnsafe, grafts.PageEvict, m, tech.Options{})
		if err != nil {
			b.Fatal(err)
		}
		clock := &vclock.Clock{}
		pager, err := kernel.NewPager(kernel.PagerConfig{
			Frames: 256, Mem: m, NodeBase: grafts.PELRUNodeBase,
		}, clock)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 256; i++ {
			pager.Access(kernel.PageID(100 + i))
		}
		grafts.NewHotList(m).Set([]kernel.PageID{500000})
		d := upcall.NewDomain(g, 0)
		defer d.Close()
		head := pager.HeadAddr()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Invoke("evict", head); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Table 3 ----

func BenchmarkTable3PageFault(b *testing.B) {
	var total time.Duration
	var faults int
	for i := 0; i < b.N; i++ {
		res, err := lmb.MeasurePageFault(256)
		if err != nil {
			b.Fatal(err)
		}
		total += res.PerFault * time.Duration(res.Pages)
		faults += res.Pages
	}
	b.ReportMetric(float64(total.Nanoseconds())/float64(faults), "ns/fault")
}

// ---- Table 4 ----

func BenchmarkTable4DiskWrite(b *testing.B) {
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		if _, err := lmb.MeasureDiskWrite(os.TempDir(), 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4DiskModel(b *testing.B) {
	// Virtual-time cost of a 1 MB sequential write on the modeled disk;
	// reported as a metric since no wall time is consumed.
	clock := &vclock.Clock{}
	dev := disk.New(disk.DefaultGeometry(), clock)
	before := clock.Now()
	if _, err := dev.Write(0, 256); err != nil {
		b.Fatal(err)
	}
	cost := clock.Now() - before
	for i := 0; i < b.N; i++ {
		_ = i
	}
	b.ReportMetric(float64(cost.Milliseconds()), "model-ms/MB")
}

// ---- Table 5 ----

func BenchmarkTable5MD5(b *testing.B) {
	data := make([]byte, 1<<20)
	workload.FillPattern(data, 5)
	want := md5x.Of(data)
	type md5Variant struct {
		name string
		id   tech.ID
		opts tech.Options
	}
	var variants []md5Variant
	for _, id := range table2Techs {
		variants = append(variants, md5Variant{string(id), id, tech.Options{}})
	}
	variants = append(variants, md5Variant{"bytecode-baseline", tech.Bytecode, tech.Options{VM: tech.VMBaseline}})
	for _, va := range variants {
		id := va.id
		b.Run(va.name, func(b *testing.B) {
			input := data
			if id == tech.Script {
				input = data[:16<<10] // the Tcl class at 16 KB per iteration
			} else if id == tech.Bytecode || id == tech.NativeUnsafe || id == tech.AOT {
				input = data[:256<<10]
			}
			g, err := tech.Load(id, grafts.MD5, mem.New(grafts.MDMemSize), va.opts)
			if err != nil {
				b.Fatal(err)
			}
			h, err := grafts.NewMD5Graft(g)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(input)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := h.Reset(); err != nil {
					b.Fatal(err)
				}
				if _, err := h.Write(input); err != nil {
					b.Fatal(err)
				}
				got, err := h.Sum()
				if err != nil {
					b.Fatal(err)
				}
				if len(input) == len(data) && got != want {
					b.Fatal("wrong digest")
				}
			}
		})
	}
}

func BenchmarkTable5MD5Reference(b *testing.B) {
	// The pure-Go md5x implementation: the ceiling for the compiled class.
	data := make([]byte, 1<<20)
	workload.FillPattern(data, 5)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		md5x.Of(data)
	}
}

// ---- Table 6 ----

func BenchmarkTable6LogicalDisk(b *testing.B) {
	const blocks = 262144
	for _, id := range table2Techs {
		b.Run(string(id), func(b *testing.B) {
			g, err := tech.Load(id, grafts.LDMap, mem.New(grafts.LDMemSize), tech.Options{})
			if err != nil {
				b.Fatal(err)
			}
			gm, err := grafts.NewGraftMapper(g, blocks)
			if err != nil {
				b.Fatal(err)
			}
			stream := workload.NewSkewed(blocks, 1996)
			written := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if written == blocks { // log full: start a fresh mapper
					b.StopTimer()
					g, err = tech.Load(id, grafts.LDMap, mem.New(grafts.LDMemSize), tech.Options{})
					if err != nil {
						b.Fatal(err)
					}
					gm, err = grafts.NewGraftMapper(g, blocks)
					if err != nil {
						b.Fatal(err)
					}
					written = 0
					b.StartTimer()
				}
				if _, err := gm.MapWrite(stream.Next()); err != nil {
					b.Fatal(err)
				}
				written++
			}
		})
	}
}

// ---- Figure 1 ----

func BenchmarkFigure1UpcallSweep(b *testing.B) {
	for _, lat := range []time.Duration{0, 5 * time.Microsecond, 10 * time.Microsecond, 25 * time.Microsecond, 50 * time.Microsecond} {
		b.Run(fmt.Sprintf("latency=%v", lat), func(b *testing.B) {
			m := mem.New(grafts.PEMemSize)
			g, err := tech.Load(tech.CompiledUnsafe, grafts.PageEvict, m, tech.Options{})
			if err != nil {
				b.Fatal(err)
			}
			clock := &vclock.Clock{}
			pager, err := kernel.NewPager(kernel.PagerConfig{
				Frames: 64, Mem: m, NodeBase: grafts.PELRUNodeBase,
			}, clock)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 64; i++ {
				pager.Access(kernel.PageID(100 + i))
			}
			grafts.NewHotList(m).Set([]kernel.PageID{500000})
			d := upcall.NewDomain(g, lat)
			defer d.Close()
			head := pager.HeadAddr()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Invoke("evict", head); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Packet filter (the §2 extension domain) ----

func BenchmarkPacketFilter(b *testing.B) {
	trace, err := netsim.GenerateTrace(netsim.DefaultTrace(4096))
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range readOnlyGraftTechs {
		b.Run(string(id), func(b *testing.B) {
			m := mem.New(grafts.PFMemSize)
			g, err := tech.Load(id, grafts.PacketFilter, m, tech.Options{})
			if err != nil {
				b.Fatal(err)
			}
			grafts.ConfigurePacketFilter(m, 5001)
			call := tech.ResolveDirect(g, "filter")
			args := []uint32{0}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := trace[i%len(trace)]
				m.WriteAt(grafts.PFBufAddr, p)
				args[0] = uint32(len(p))
				if _, err := call(args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMPFDispatch reproduces the MPF argument [YUHARA94]: with many
// endpoints, per-frame cost under a linear filter scan grows with the
// endpoint count, while the merged port-table dispatch stays flat.
func BenchmarkMPFDispatch(b *testing.B) {
	trace, err := netsim.GenerateTrace(netsim.TraceConfig{
		Packets: 4096, MatchPort: 5015, MatchFrac: 0.1, PayloadLen: 16, Seed: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("linear-scan-%d-endpoints", n), func(b *testing.B) {
			d := netsim.NewDemux()
			for i := 0; i < n; i++ {
				m := mem.New(grafts.PFMemSize)
				g, err := tech.Load(tech.CompiledUnsafe, grafts.PacketFilter, m, tech.Options{})
				if err != nil {
					b.Fatal(err)
				}
				grafts.ConfigurePacketFilter(m, uint16(5000+i))
				if _, err := d.Register(fmt.Sprintf("udp:%d", 5000+i), g, "filter", grafts.PFBufAddr); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Deliver(trace[i%len(trace)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("merged-table-%d-endpoints", n), func(b *testing.B) {
			d := netsim.NewDemux()
			for i := 0; i < n; i++ {
				if _, err := d.RegisterPort(fmt.Sprintf("udp:%d", 5000+i), uint16(5000+i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Deliver(trace[i%len(trace)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Ablations ----

func BenchmarkAblationNilCheck(b *testing.B) {
	for _, id := range []tech.ID{tech.CompiledSafe, tech.CompiledSafeNil} {
		b.Run(string(id), func(b *testing.B) {
			call, head := evictSetup(b, id, tech.Options{})
			args := []uint32{head}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := call(args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationSFIReadProtect(b *testing.B) {
	data := make([]byte, 256<<10)
	workload.FillPattern(data, 9)
	for _, id := range []tech.ID{tech.CompiledSFI, tech.CompiledSFIFull} {
		b.Run(string(id), func(b *testing.B) {
			g, err := tech.Load(id, grafts.MD5, mem.New(grafts.MDMemSize), tech.Options{})
			if err != nil {
				b.Fatal(err)
			}
			h, err := grafts.NewMD5Graft(g)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := h.Reset(); err != nil {
					b.Fatal(err)
				}
				if _, err := h.Write(data); err != nil {
					b.Fatal(err)
				}
				if _, err := h.Sum(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTelemetry holds the observability layer to its
// documented <=2% budget on the two hottest workloads: the compiled
// eviction search (per-invocation counter cost at its worst, ~250ns of
// work per call) and the compiled MD5 stream (counter cost amortized over
// 96KB of work per call). Instrumentation is decided at load time, so
// each sub-benchmark loads its graft under the state it measures.
func BenchmarkAblationTelemetry(b *testing.B) {
	evict := func(b *testing.B) {
		call, head := evictSetup(b, tech.CompiledUnsafe, tech.Options{})
		args := []uint32{head}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := call(args); err != nil {
				b.Fatal(err)
			}
		}
	}
	md5 := func(b *testing.B) {
		data := make([]byte, 256<<10)
		workload.FillPattern(data, 9)
		g, err := tech.Load(tech.CompiledUnsafe, grafts.MD5, mem.New(grafts.MDMemSize), tech.Options{})
		if err != nil {
			b.Fatal(err)
		}
		h, err := grafts.NewMD5Graft(g)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := h.Reset(); err != nil {
				b.Fatal(err)
			}
			if _, err := h.Write(data); err != nil {
				b.Fatal(err)
			}
			if _, err := h.Sum(); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, on := range []bool{false, true} {
		state := "off"
		if on {
			state = "on"
		}
		b.Run("evict-telemetry-"+state, func(b *testing.B) {
			telemetry.SetEnabled(on)
			defer telemetry.SetEnabled(false)
			evict(b)
		})
		b.Run("md5-telemetry-"+state, func(b *testing.B) {
			telemetry.SetEnabled(on)
			defer telemetry.SetEnabled(false)
			md5(b)
		})
	}
	telemetry.ResetMetrics()
}

// BenchmarkAblationVMTranslator isolates the optimizing translator's
// pieces on the MD5 graft: the baseline interpreter, the full translator,
// fusion disabled, and per-instruction instead of block-granular fuel.
func BenchmarkAblationVMTranslator(b *testing.B) {
	data := make([]byte, 256<<10)
	workload.FillPattern(data, 9)
	prog, err := gel.ParseAndCheck(grafts.MD5.GEL)
	if err != nil {
		b.Fatal(err)
	}
	mod, err := compile.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name     string
		baseline bool
		oc       vm.OptConfig
	}{
		{"baseline", true, vm.OptConfig{}},
		{"opt", false, vm.OptConfig{}},
		{"opt-nofuse", false, vm.OptConfig{NoFuse: true}},
		{"opt-perinstr-fuel", false, vm.OptConfig{PerInstrFuel: true}},
	}
	for _, va := range variants {
		b.Run(va.name, func(b *testing.B) {
			m := mem.New(grafts.MDMemSize)
			cfg := mem.Config{Policy: mem.PolicyChecked}
			var g tech.Graft
			if va.baseline {
				v, err := vm.New(mod, m, cfg)
				if err != nil {
					b.Fatal(err)
				}
				g = v
			} else {
				v, err := vm.NewOpt(mod, m, cfg, va.oc)
				if err != nil {
					b.Fatal(err)
				}
				g = v
			}
			h, err := grafts.NewMD5Graft(g)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := h.Reset(); err != nil {
					b.Fatal(err)
				}
				if _, err := h.Write(data); err != nil {
					b.Fatal(err)
				}
				if _, err := h.Sum(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationScriptParseCache shows what the Tcl class's defining
// per-eval re-parse costs: the eviction graft with and without the
// structural parse cache (the cache stays off everywhere else).
func BenchmarkAblationScriptParseCache(b *testing.B) {
	for _, cache := range []bool{false, true} {
		name := "reparse"
		if cache {
			name = "parse-cache"
		}
		b.Run(name, func(b *testing.B) {
			call, head := evictSetup(b, tech.Script, tech.Options{ScriptParseCache: cache})
			args := []uint32{head}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := call(args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Sanity test so the root package has a test beyond benchmarks: the
// quick-scale harness runs end to end.
func TestQuickHarnessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick harness")
	}
	cfg := bench.Quick()
	cfg.Runs = 2
	cfg.EvictIters = 500
	cfg.MD5Bytes = 32 << 10
	cfg.MD5ScriptBytes = 4 << 10
	cfg.LDWrites = 4096
	cfg.LDScriptWrites = 256
	ev, err := bench.RunEviction(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bench.RunFigure1(cfg, ev); err != nil {
		t.Fatal(err)
	}
	if _, err := bench.RunMD5(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := bench.RunLD(cfg); err != nil {
		t.Fatal(err)
	}
}
